package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"trapquorum/client"
	"trapquorum/internal/nodeengine"
	"trapquorum/internal/trapezoid"
)

// corruptionLog captures the shards the system convicts, via the
// synchronous corruption handler.
type corruptionLog struct {
	mu     sync.Mutex
	shards map[int]int
}

func newCorruptionLog(sys *System) *corruptionLog {
	l := &corruptionLog{shards: make(map[int]int)}
	sys.SetCorruptionHandler(func(shard int) {
		l.mu.Lock()
		l.shards[shard]++
		l.mu.Unlock()
	})
	return l
}

func (l *corruptionLog) reports(shard int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shards[shard]
}

// readAllBlocks reads every data block of the stripe and fails the
// test on any error or content mismatch — the core acceptance claim:
// whatever was injected, a read never returns corrupt data.
func (ts *testSystem) readAllBlocks(t testing.TB, stripe uint64, want [][]byte, when string) {
	t.Helper()
	for i := range want {
		got, _, err := ts.sys.ReadBlock(context.Background(), stripe, i)
		if err != nil {
			t.Fatalf("%s: ReadBlock(%d, %d): %v", when, stripe, i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("%s: ReadBlock(%d, %d) returned wrong bytes", when, stripe, i)
		}
	}
}

// TestReadBlockNeverServesEngineCorruption: each engine-level
// corruption mode (bit-flip, truncate, wrong-data-with-forged-meta) on
// a data shard must be detected on read, served from the survivors,
// and reported against the right shard.
func TestReadBlockNeverServesEngineCorruption(t *testing.T) {
	modes := []nodeengine.CorruptionMode{
		nodeengine.CorruptBitFlip,
		nodeengine.CorruptTruncate,
		nodeengine.CorruptWrongData,
	}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			ts := fig3System(t, Options{})
			log := newCorruptionLog(ts.sys)
			const stripe, victim = 1, 2
			data := ts.seed(t, stripe, 64)

			engine := ts.shardNode(victim).Engine()
			if err := engine.CorruptChunk(context.Background(), chunkID(stripe, victim), mode); err != nil {
				t.Fatal(err)
			}

			ts.readAllBlocks(t, stripe, data, "after "+mode.String())
			if log.reports(victim) == 0 {
				t.Fatalf("%s on shard %d went unreported", mode, victim)
			}
			if m := ts.sys.Metrics(); m.CorruptShards == 0 {
				t.Fatal("CorruptShards metric stayed zero")
			}
		})
	}
}

// TestReadBlockSurvivesLyingDataNode: a Byzantine node whose engine
// metadata is immaculate but whose served bytes are silently altered.
// Only the cross-checksum records its peers hold can convict it — and
// they must, on the very first read.
func TestReadBlockSurvivesLyingDataNode(t *testing.T) {
	ts := fig3System(t, Options{})
	log := newCorruptionLog(ts.sys)
	const stripe, liar = 1, 3
	data := ts.seed(t, stripe, 64)

	ts.shardNode(liar).SetReadCorrupt(true)
	ts.readAllBlocks(t, stripe, data, "while lying")
	if log.reports(liar) == 0 {
		t.Fatalf("lying node %d was never convicted", liar)
	}

	// The stored bytes were never wrong: once the node stops lying, the
	// stripe audits clean with no repair at all.
	ts.shardNode(liar).SetReadCorrupt(false)
	rep, err := ts.sys.ScrubStripe(context.Background(), stripe)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy {
		t.Fatalf("scrub after the node stopped lying: %v", rep)
	}
}

// TestDecodeReadSurvivesCorruptSurvivor: the data node is down and
// most parity with it, so every decode draws from k+1 survivors that
// include a node serving wrong bytes. Whatever k-subset the fast path
// picks, the served block must be the true one — either the liar was
// skipped, or the record-majority check catches the bad decode and the
// verified re-decode routes around it.
func TestDecodeReadSurvivesCorruptSurvivor(t *testing.T) {
	for _, lying := range []bool{false, true} {
		name := "engine-corrupt-parity"
		if lying {
			name = "lying-parity"
		}
		t.Run(name, func(t *testing.T) {
			ts := fig3System(t, Options{})
			const stripe, block = 1, 0
			data := ts.seed(t, stripe, 64)

			// Survivors: data 1..7 plus parity shards 8 and 9 — any
			// decode uses 8 of these 9, so the corrupt parity 9 is in
			// most candidate sets.
			ts.shardNode(block).Crash()
			for p := 2; p < ts.code.N()-ts.code.K(); p++ {
				ts.shardNode(ts.parityShard(p)).Crash()
			}
			badParity := ts.parityShard(1)
			if lying {
				ts.shardNode(badParity).SetReadCorrupt(true)
			} else {
				err := ts.shardNode(badParity).Engine().CorruptChunk(
					context.Background(), chunkID(stripe, badParity), nodeengine.CorruptWrongData)
				if err != nil {
					t.Fatal(err)
				}
			}

			for i := 0; i < 30; i++ {
				got, _, err := ts.sys.ReadBlock(context.Background(), stripe, block)
				if err != nil {
					t.Fatalf("decode read %d with a corrupt survivor: %v", i, err)
				}
				if !bytes.Equal(got, data[block]) {
					t.Fatalf("decode read %d returned corrupt bytes", i)
				}
			}
			if m := ts.sys.Metrics(); m.DecodeReads == 0 {
				t.Fatal("reads did not go through the decode path; the test exercised nothing")
			}
		})
	}
}

// TestReadFailsLoudWithoutHonestBasis: the version quorum still
// passes, but every reachable decode basis contains a shard serving
// wrong bytes (two corrupt parities, beyond the single-corruption
// guarantee). The only acceptable outcome is a corruption error —
// never the wrong bytes.
func TestReadFailsLoudWithoutHonestBasis(t *testing.T) {
	for _, lying := range []bool{false, true} {
		name := "engine-corrupt"
		if lying {
			name = "lying"
		}
		t.Run(name, func(t *testing.T) {
			ts := fig3System(t, Options{})
			const stripe, block = 1, 0
			ts.seed(t, stripe, 64)

			// Block 0's trapezoid keeps its level-0 read threshold
			// (parity 8 and 9 both answer versions), but the survivors
			// are data 1..7 plus those two parities — 9 shards for a
			// k = 8 decode, and both parities are corrupt, so every
			// basis of 8 contains a liar.
			ts.shardNode(block).Crash()
			for p := 2; p < ts.code.N()-ts.code.K(); p++ {
				ts.shardNode(ts.parityShard(p)).Crash()
			}
			for _, bad := range []int{ts.parityShard(0), ts.parityShard(1)} {
				if lying {
					ts.shardNode(bad).SetReadCorrupt(true)
				} else {
					err := ts.shardNode(bad).Engine().CorruptChunk(
						context.Background(), chunkID(stripe, bad), nodeengine.CorruptWrongData)
					if err != nil {
						t.Fatal(err)
					}
				}
			}

			_, _, err := ts.sys.ReadBlock(context.Background(), stripe, block)
			if err == nil {
				t.Fatal("read served a block that cannot be decoded honestly")
			}
			if !errors.Is(err, client.ErrCorrupt) {
				t.Fatalf("read error %v does not carry client.ErrCorrupt", err)
			}
		})
	}
}

// TestScrubPinpointsWrongDataCulprits: consistently-forged shards
// (engine metadata matches the wrong bytes) on both sides of the code,
// found by a read-only scrub and healed by shard repair.
func TestScrubPinpointsWrongDataCulprits(t *testing.T) {
	ts := fig3System(t, Options{})
	const stripe = 1
	data := ts.seed(t, stripe, 64)
	badData, badParity := 5, ts.parityShard(2)
	for _, victim := range []int{badData, badParity} {
		err := ts.shardNode(victim).Engine().CorruptChunk(
			context.Background(), chunkID(stripe, victim), nodeengine.CorruptWrongData)
		if err != nil {
			t.Fatal(err)
		}
	}

	rep, err := ts.sys.ScrubStripe(context.Background(), stripe)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy {
		t.Fatalf("scrub missed two forged shards: %v", rep)
	}
	found := make(map[int]bool)
	for _, shard := range rep.CorruptShards {
		found[shard] = true
	}
	if !found[badData] {
		t.Fatalf("scrub %v did not convict forged data shard %d", rep, badData)
	}

	// Heal and re-audit. The data culprit is known from the first pass;
	// the parity culprit may only be pinpointable once the data side is
	// clean again, so repair from a fresh scrub until it reports healthy.
	for pass := 0; pass < 3; pass++ {
		for _, shard := range rep.CorruptShards {
			if err := ts.sys.RepairShard(context.Background(), stripe, shard); err != nil {
				t.Fatalf("repair shard %d: %v", shard, err)
			}
		}
		if rep, err = ts.sys.ScrubStripe(context.Background(), stripe); err != nil {
			t.Fatal(err)
		}
		if rep.Healthy {
			break
		}
	}
	if !rep.Healthy {
		t.Fatalf("stripe still degraded after repairs: %v", rep)
	}
	ts.readAllBlocks(t, stripe, data, "after repair")
}

// TestStaleReplayIsStalenessNotCorruption: regressing a shard to a
// previously captured valid state (a restored backup) must read as
// staleness — old version, honest bytes — and never poison a read.
func TestStaleReplayIsStalenessNotCorruption(t *testing.T) {
	ts := fig3System(t, Options{})
	const stripe, victim = 1, 4
	data := ts.seed(t, stripe, 64)

	snap, err := ts.shardNode(victim).Engine().SnapshotChunk(context.Background(), chunkID(stripe, victim))
	if err != nil {
		t.Fatal(err)
	}
	fresh := bytes.Repeat([]byte{0xd1}, 64)
	if err := ts.sys.WriteBlock(context.Background(), stripe, victim, fresh); err != nil {
		t.Fatal(err)
	}
	data[victim] = fresh
	if err := ts.shardNode(victim).Engine().RestoreChunk(context.Background(), snap); err != nil {
		t.Fatal(err)
	}

	ts.readAllBlocks(t, stripe, data, "after stale replay")
	rep, err := ts.sys.ScrubStripe(context.Background(), stripe)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CorruptShards) != 0 {
		t.Fatalf("stale replay misclassified as corruption: %v", rep)
	}
	if len(rep.StaleShards) != 1 || rep.StaleShards[0] != victim {
		t.Fatalf("scrub %v, want exactly shard %d stale", rep, victim)
	}
	if _, _, err := ts.sys.RepairStripe(context.Background(), stripe); err != nil {
		t.Fatal(err)
	}
	if rep, err = ts.sys.ScrubStripe(context.Background(), stripe); err != nil || !rep.Healthy {
		t.Fatalf("after repair: %v, %v", rep, err)
	}
}

// TestAnySingleCorruptShardRecovered is the differential property test
// of the issue's acceptance claim: for each published (n, k)
// configuration, flipping ANY single shard — every shard index, every
// corruption mode, Byzantine lying included — is always detected and
// recovered. Reads return true bytes throughout, the scrubber convicts
// the right shard, and after repair the stripe audits clean.
func TestAnySingleCorruptShardRecovered(t *testing.T) {
	configs := []struct {
		n, k  int
		shape trapezoid.Shape
		w     int
	}{
		{15, 8, trapezoid.Shape{A: 2, B: 3, H: 1}, 3},  // the paper's Figure-3 system
		{9, 6, trapezoid.Shape{A: 2, B: 1, H: 1}, 2},   // nbNodes = 9-6+1 = 4
		{20, 12, trapezoid.Shape{A: 3, B: 3, H: 1}, 3}, // nbNodes = 20-12+1 = 9
	}
	modes := []nodeengine.CorruptionMode{
		nodeengine.CorruptBitFlip,
		nodeengine.CorruptTruncate,
		nodeengine.CorruptWrongData,
	}
	const lyingMode = nodeengine.CorruptionMode(0) // sentinel: Byzantine serving, not stored rot

	for _, cfg := range configs {
		t.Run(fmt.Sprintf("n%d.k%d", cfg.n, cfg.k), func(t *testing.T) {
			ts := newTestSystem(t, cfg.n, cfg.k, cfg.shape, cfg.w, Options{})
			stripe := uint64(0)
			for _, mode := range append(append([]nodeengine.CorruptionMode(nil), modes...), lyingMode) {
				for victim := 0; victim < cfg.n; victim++ {
					stripe++
					data := ts.seed(t, stripe, 32)

					if mode == lyingMode {
						ts.shardNode(victim).SetReadCorrupt(true)
					} else {
						err := ts.shardNode(victim).Engine().CorruptChunk(
							context.Background(), chunkID(stripe, victim), mode)
						if err != nil {
							t.Fatalf("corrupt shard %d with %s: %v", victim, mode, err)
						}
					}
					when := fmt.Sprintf("mode=%v victim=%d", mode, victim)

					// 1. Reads never surface the corruption.
					ts.readAllBlocks(t, stripe, data, when)

					// 2. A read-only audit convicts the victim.
					rep, err := ts.sys.ScrubStripe(context.Background(), stripe)
					if err != nil {
						t.Fatalf("%s: scrub: %v", when, err)
					}
					convicted := false
					for _, shard := range rep.CorruptShards {
						if shard == victim {
							convicted = true
						} else if mode != lyingMode {
							t.Fatalf("%s: scrub convicted innocent shard %d: %v", when, shard, rep)
						}
					}
					if !convicted {
						t.Fatalf("%s: scrub did not convict the victim: %v", when, rep)
					}

					// 3. Recovery: rebuild the shard (or stop the lying) and
					// the stripe audits clean again.
					if mode == lyingMode {
						ts.shardNode(victim).SetReadCorrupt(false)
					} else if err := ts.sys.RepairShard(context.Background(), stripe, victim); err != nil {
						t.Fatalf("%s: repair: %v", when, err)
					}
					if rep, err = ts.sys.ScrubStripe(context.Background(), stripe); err != nil || !rep.Healthy {
						t.Fatalf("%s: audit after recovery: %v, %v", when, rep, err)
					}
					ts.readAllBlocks(t, stripe, data, when+" after recovery")
				}
			}
		})
	}
}
