package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// testSystem bundles a System with its backing simulated cluster.
type testSystem struct {
	sys     *System
	cluster *sim.Cluster
	code    *erasure.Code
}

// newTestSystem builds the paper's Figure-3 configuration by default:
// (n,k) = (15,8) with trapezoid a=2 b=3 h=1 (8 positions) and w=3.
func newTestSystem(t testing.TB, n, k int, shape trapezoid.Shape, w int, opts Options) *testSystem {
	t.Helper()
	code, err := erasure.New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := trapezoid.NewConfig(shape, w)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := sim.NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	nodes := make([]NodeClient, n)
	for j := 0; j < n; j++ {
		nodes[j] = cluster.Node(j)
	}
	sys, err := NewSystem(code, cfg, nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testSystem{sys: sys, cluster: cluster, code: code}
}

func fig3System(t testing.TB, opts Options) *testSystem {
	return newTestSystem(t, 15, 8, trapezoid.Shape{A: 2, B: 3, H: 1}, 3, opts)
}

// seed installs a deterministic stripe and returns its data blocks.
func (ts *testSystem) seed(t testing.TB, stripe uint64, size int) [][]byte {
	t.Helper()
	r := rand.New(rand.NewSource(int64(stripe) + 1))
	data := make([][]byte, ts.code.K())
	for i := range data {
		data[i] = make([]byte, size)
		r.Read(data[i])
	}
	if err := ts.sys.SeedStripe(context.Background(), stripe, data); err != nil {
		t.Fatal(err)
	}
	return data
}

// shardNode returns the cluster node holding stripe shard j.
func (ts *testSystem) shardNode(j int) *sim.Node { return ts.cluster.Node(j) }

// parityShard returns the stripe index of the p-th parity shard.
func (ts *testSystem) parityShard(p int) int { return ts.code.K() + p }

func TestNewSystemValidation(t *testing.T) {
	code, _ := erasure.New(15, 8)
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	cluster, _ := sim.NewCluster(15)
	defer cluster.Close()
	nodes := make([]NodeClient, 15)
	for j := range nodes {
		nodes[j] = cluster.Node(j)
	}
	if _, err := NewSystem(nil, cfg, nodes, Options{}); err == nil {
		t.Error("nil code accepted")
	}
	if _, err := NewSystem(code, cfg, nodes[:14], Options{}); err == nil {
		t.Error("wrong node count accepted")
	}
	badCfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 2}, 3) // 15 positions != 8
	if _, err := NewSystem(code, badCfg, nodes, Options{}); err == nil {
		t.Error("mismatched trapezoid accepted")
	}
	nilNodes := append([]NodeClient(nil), nodes...)
	nilNodes[3] = nil
	if _, err := NewSystem(code, cfg, nilNodes, Options{}); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewSystem(code, cfg, nodes, Options{}); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
}

func TestSeedAndReadAllBlocks(t *testing.T) {
	ts := fig3System(t, Options{})
	data := ts.seed(t, 1, 64)
	for i := 0; i < ts.code.K(); i++ {
		got, version, err := ts.sys.ReadBlock(context.Background(), 1, i)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if version != 1 {
			t.Fatalf("block %d: version %d, want 1", i, version)
		}
		if !bytes.Equal(got, data[i]) {
			t.Fatalf("block %d: wrong content", i)
		}
	}
	m := ts.sys.Metrics()
	if m.DirectReads != int64(ts.code.K()) || m.DecodeReads != 0 {
		t.Fatalf("metrics = %+v, want all direct", m)
	}
}

func TestSeedRequiresAllNodes(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.cluster.Crash(12)
	data := make([][]byte, 8)
	for i := range data {
		data[i] = []byte{1, 2, 3}
	}
	if err := ts.sys.SeedStripe(context.Background(), 1, data); !errors.Is(err, ErrSeedIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadValidation(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 32)
	if _, _, err := ts.sys.ReadBlock(context.Background(), 1, -1); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ts.sys.ReadBlock(context.Background(), 1, 8); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ts.sys.ReadBlock(context.Background(), 99, 0); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteValidation(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 32)
	if err := ts.sys.WriteBlock(context.Background(), 1, 9, make([]byte, 32)); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("err = %v", err)
	}
	if err := ts.sys.WriteBlock(context.Background(), 99, 0, make([]byte, 32)); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
	if err := ts.sys.WriteBlock(context.Background(), 1, 0, make([]byte, 31)); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	r := rand.New(rand.NewSource(9))
	for round := 1; round <= 5; round++ {
		for i := 0; i < ts.code.K(); i++ {
			x := make([]byte, 64)
			r.Read(x)
			if err := ts.sys.WriteBlock(context.Background(), 1, i, x); err != nil {
				t.Fatalf("round %d block %d: %v", round, i, err)
			}
			got, version, err := ts.sys.ReadBlock(context.Background(), 1, i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, x) {
				t.Fatalf("round %d block %d: wrong content", round, i)
			}
			if version != uint64(round+1) {
				t.Fatalf("round %d block %d: version %d", round, i, version)
			}
		}
	}
}

// TestStripeConsistencyAfterWrites checks the deepest invariant: after
// any sequence of successful quorum writes with every node up, the
// physical stripe must still satisfy the erasure code (parity blocks
// are exactly the coded combination of the data blocks).
func TestStripeConsistencyAfterWrites(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 48)
	r := rand.New(rand.NewSource(10))
	for op := 0; op < 40; op++ {
		i := r.Intn(ts.code.K())
		x := make([]byte, 48)
		r.Read(x)
		if err := ts.sys.WriteBlock(context.Background(), 1, i, x); err != nil {
			t.Fatal(err)
		}
	}
	shards := make([][]byte, ts.code.N())
	for j := range shards {
		chunk, err := ts.shardNode(j).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: j})
		if err != nil {
			t.Fatal(err)
		}
		shards[j] = chunk.Data
	}
	ok, err := ts.code.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stripe violates the erasure code after writes")
	}
}

func TestReadDecodesWhenDataNodeDown(t *testing.T) {
	ts := fig3System(t, Options{})
	data := ts.seed(t, 1, 64)
	ts.cluster.Crash(3) // data node of block 3
	got, version, err := ts.sys.ReadBlock(context.Background(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[3]) {
		t.Fatal("decoded content wrong")
	}
	if version != 1 {
		t.Fatalf("version = %d", version)
	}
	if m := ts.sys.Metrics(); m.DecodeReads != 1 {
		t.Fatalf("metrics = %+v, want one decode read", m)
	}
}

func TestWriteSucceedsWithDataNodeDown(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	ts.cluster.Crash(5) // data node of block 5
	x := bytes.Repeat([]byte{0xaa}, 64)
	// Level 0 = {N_5, parity 8, parity 9}: w_0 = 2 reachable via the
	// two parity nodes even with N_5 down.
	if err := ts.sys.WriteBlock(context.Background(), 1, 5, x); err != nil {
		t.Fatalf("write with data node down failed: %v", err)
	}
	// Read must take the decode path and still see the new value.
	got, version, err := ts.sys.ReadBlock(context.Background(), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, x) {
		t.Fatal("decode after degraded write returned stale data")
	}
	if version != 2 {
		t.Fatalf("version = %d, want 2", version)
	}
	// After the node comes back it is stale; reads still prefer the
	// quorum's version and decode.
	ts.cluster.Restart(5)
	got, _, err = ts.sys.ReadBlock(context.Background(), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, x) {
		t.Fatal("stale revived node leaked old data")
	}
}

func TestWriteFailsWhenLevelStarved(t *testing.T) {
	ts := fig3System(t, Options{})
	data := ts.seed(t, 1, 64)
	// Level 1 holds parity shards 10..14 with w_1 = 3; crash three.
	ts.cluster.Crash(12)
	ts.cluster.Crash(13)
	ts.cluster.Crash(14)
	x := bytes.Repeat([]byte{0x55}, 64)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, x); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v, want ErrWriteFailed", err)
	}
	// Rollback must have restored the stripe: every reachable node
	// reports version 1 and reads return the original value.
	got, version, err := ts.sys.ReadBlock(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || !bytes.Equal(got, data[2]) {
		t.Fatalf("rollback incomplete: version %d", version)
	}
	// Writes work again once the level recovers.
	ts.cluster.Restart(12)
	ts.cluster.Restart(13)
	ts.cluster.Restart(14)
	if err := ts.sys.WriteBlock(context.Background(), 1, 2, x); err != nil {
		t.Fatal(err)
	}
	got, version, _ = ts.sys.ReadBlock(context.Background(), 1, 2)
	if version != 2 || !bytes.Equal(got, x) {
		t.Fatal("post-recovery write not visible")
	}
}

func TestWriteFailsWhenInitialReadImpossible(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	// Crash enough of every level to break all version checks:
	// level 0 needs r_0 = 2 of {N_i, 8, 9}; level 1 needs r_1 = 3 of
	// {10..14}. Crash data node, 8, 9 and 10, 11, 12.
	for _, j := range []int{2, 8, 9, 10, 11, 12} {
		ts.cluster.Crash(j)
	}
	err := ts.sys.WriteBlock(context.Background(), 1, 2, make([]byte, 64))
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v", err)
	}
	if m := ts.sys.Metrics(); m.FailedWrites != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestReadFallsThroughToLevel1(t *testing.T) {
	ts := fig3System(t, Options{})
	data := ts.seed(t, 1, 64)
	// Starve level 0's check: r_0 = 2 of {N_1, 8, 9}; crash 8 and 9 so
	// only N_1 answers there.
	ts.cluster.Crash(8)
	ts.cluster.Crash(9)
	got, _, err := ts.sys.ReadBlock(context.Background(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[1]) {
		t.Fatal("wrong content via level-1 check")
	}
}

func TestReadFailsWhenAllChecksStarved(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	for _, j := range []int{1, 8, 9, 10, 11, 12} {
		ts.cluster.Crash(j)
	}
	if _, _, err := ts.sys.ReadBlock(context.Background(), 1, 1); !errors.Is(err, ErrNotReadable) {
		t.Fatalf("err = %v", err)
	}
	if m := ts.sys.Metrics(); m.FailedReads != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestReadFailsWhenDecodeImpossible(t *testing.T) {
	// Data node down and too few up-to-date shards to decode: version
	// check can pass while decode cannot gather k shards.
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	// Crash all data nodes except one plus one parity node: the six
	// remaining parity shards plus one data shard are fewer than k=8,
	// while the level-0 version check (parity shards 8 and 9) passes.
	for _, j := range []int{0, 1, 2, 3, 4, 5, 6, 14} {
		ts.cluster.Crash(j)
	}
	_, _, err := ts.sys.ReadBlock(context.Background(), 1, 0)
	if !errors.Is(err, ErrNotReadable) {
		t.Fatalf("err = %v", err)
	}
}

func TestObjectRoundTrip(t *testing.T) {
	ts := fig3System(t, Options{})
	payload := []byte("the quick brown fox jumps over the lazy dog; pack my box")
	if err := ts.sys.WriteObject(context.Background(), 7, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ts.sys.ReadObject(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("object mismatch: %q", got)
	}
	if _, err := ts.sys.ReadObject(context.Background(), 8); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
}

func TestObjectRoundTripUnderFailures(t *testing.T) {
	ts := fig3System(t, Options{})
	payload := bytes.Repeat([]byte("0123456789abcdef"), 32)
	if err := ts.sys.WriteObject(context.Background(), 7, payload); err != nil {
		t.Fatal(err)
	}
	// Lose n-k-1 nodes chosen so the level-0 version check (parity
	// shards 8 and 9) survives: reads must still succeed, decoding
	// the blocks whose data nodes are down.
	for _, j := range []int{0, 4, 5, 6, 13, 14} {
		ts.cluster.Crash(j)
	}
	got, err := ts.sys.ReadObject(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("object corrupted under failures")
	}
}

func TestStripesListing(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 3, 16)
	ts.seed(t, 5, 16)
	got := ts.sys.Stripes()
	if len(got) != 2 {
		t.Fatalf("stripes = %v", got)
	}
	seen := map[uint64]bool{}
	for _, s := range got {
		seen[s] = true
	}
	if !seen[3] || !seen[5] {
		t.Fatalf("stripes = %v", got)
	}
}
