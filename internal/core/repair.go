package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"trapquorum/client"
	"trapquorum/internal/blockpool"
	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
)

// errShardExcluded marks the self-slot of a repair's survivor gather;
// it never escapes freshestConsistentSet.
var errShardExcluded = errors.New("core: shard excluded from gather")

// RepairShard reconstructs stripe shard j from the surviving nodes and
// reinstalls it on node j (which must be reachable again). This is the
// exact-repair path run when a failed node rejoins with an empty or
// stale disk.
//
// The repair reads every reachable shard, groups them into mutually
// consistent sets by version vector (as the decode path does), picks
// the freshest set with at least k members, recomputes shard j from
// it, and writes the chunk with the set's version bookkeeping.
//
// Ordering note for bulk repair: when many shards are stale, repair
// parity shards before data shards. Data shards are always mutually
// consistent (each is authoritative for its own block), so parity can
// be rebuilt from them; a data-shard rebuild, however, needs k
// consistent survivors, which stale parities cannot supply until they
// are refreshed.
func (s *System) RepairShard(ctx context.Context, stripe uint64, shard int) error {
	if shard < 0 || shard >= s.code.N() {
		return fmt.Errorf("%w: shard %d of n=%d", ErrBadIndex, shard, s.code.N())
	}
	if _, err := s.stripeBlockSize(stripe); err != nil {
		return err
	}
	vector, shards, recs, err := s.freshestConsistentSet(ctx, stripe, shard)
	if err != nil {
		return err
	}
	// The rebuilt shard lives in a pooled buffer: the node install
	// snapshots what it stores (client contract), so the buffer is
	// release-safe once the RPC settles.
	rebuilt := blockpool.GetBlock(len(shards[firstPresent(shards)]))
	defer rebuilt.Release()
	if err := s.code.RepairShardInto(rebuilt.B, shard, shards); err != nil {
		return err
	}
	versions, sums, err := s.repairInstallMeta(shard, vector, rebuilt.B, recs)
	if err != nil {
		return err
	}
	// Version-guarded install: a concurrent write may have advanced
	// the shard since the survivors were gathered; never regress it.
	if err := s.nodes[shard].PutChunkIfFresher(ctx, chunkID(stripe, shard), rebuilt.B, versions, sums...); err != nil {
		return err
	}
	s.metrics.Repairs.Add(1)
	return nil
}

// repairInstallMeta derives the version vector and cross-checksum
// record a rebuilt shard is installed with. A rebuilt data shard is
// verified against the survivors' record majority before install —
// installing unverified bytes would launder a corrupt survivor's
// damage into a fresh, self-consistent chunk. A rebuilt parity shard
// carries the record entries the survivor majority agrees on (slots
// without a majority stay empty and abstain from future reads).
func (s *System) repairInstallMeta(shard int, vector []uint64, rebuilt []byte, recs map[int][]client.BlockSum) ([]uint64, []client.BlockSum, error) {
	k := s.code.K()
	if shard < k {
		sum := erasure.Sum64(rebuilt)
		if want := recMajority(recs, shard, vector[shard], k); want.known && want.sum != sum {
			// Some survivor fed bad bytes into the rebuild; which one is
			// unknown here, so no per-shard report — the read path's
			// escalation pinpoints culprits.
			return nil, nil, fmt.Errorf("core: rebuilt shard %d disagrees with the record majority: %w", shard, client.ErrCorrupt)
		}
		return []uint64{vector[shard]}, []client.BlockSum{{Version: vector[shard], Sum: sum}}, nil
	}
	sums := make([]client.BlockSum, k)
	for b := 0; b < k; b++ {
		if op := recMajority(recs, b, vector[b], k); op.known {
			sums[b] = client.BlockSum{Version: vector[b], Sum: op.sum}
		}
	}
	return vector, sums, nil
}

// recMajority tallies survivor record opinions about data block
// `block` at version v. Parity records vote with their slot `block`;
// a data shard's single-slot record votes only about its own block.
func recMajority(recs map[int][]client.BlockSum, block int, version uint64, k int) sumOpinion {
	tally := make(map[uint64]int)
	for shard, rec := range recs {
		if shard < k {
			if shard == block && len(rec) == 1 && rec[0].Version == version {
				tally[rec[0].Sum]++
			}
			continue
		}
		tallyOpinion(tally, rec, block, version)
	}
	return pluralitySum(tally)
}

// firstPresent returns the index of the first non-nil shard; the
// callers' survivor sets always hold at least k ≥ 1 members.
func firstPresent(shards [][]byte) int {
	for i, s := range shards {
		if s != nil {
			return i
		}
	}
	return 0
}

// RepairStripe brings every stale shard of a stripe back to a mutually
// consistent, freshest reachable state, iterating to a fixpoint. The
// iteration matters because repairs have dependencies in both
// directions: stale parity needs fresh data shards, while a data shard
// that missed a committed write can only be rebuilt once enough fresh
// parity is available — and a shard that is *ahead* of every
// consistent group (it holds a committed write its peers missed) must
// not be touched at all, or the write would be lost.
//
// Within one round every shard's repair runs concurrently (bounded by
// the configured concurrency): per-shard repairs are independent —
// each gathers its own survivor set excluding itself and installs
// through the version-guarded put, so racing repairs can at worst
// observe each other's already-atomic installs. Rounds remain
// barriers, preserving the fixpoint argument.
//
// It returns the number of shards whose repair call succeeded, the
// shards intentionally left alone because they are ahead of (or
// incomparable with) the freshest rebuildable state, and an error if
// some shard could not be repaired for any other reason.
func (s *System) RepairStripe(ctx context.Context, stripe uint64) (repaired int, ahead []int, err error) {
	if _, err := s.stripeBlockSize(stripe); err != nil {
		return 0, nil, err
	}
	n := s.code.N()
	lastFailed := n + 1
	for round := 0; round < n+1; round++ {
		if cerr := ctx.Err(); cerr != nil {
			return repaired, ahead, opErr("repair", stripe, cerr)
		}
		var failed []int
		var failErr error
		ahead = ahead[:0]
		Fanout(ctx, s.bulkLimit(), n, func(cctx context.Context, shard int) (struct{}, error) {
			return struct{}{}, s.RepairShard(cctx, stripe, shard)
		}, func(shard int, _ struct{}, rerr error) bool {
			switch {
			case rerr == nil:
				repaired++
			case errors.Is(rerr, sim.ErrVersionMismatch):
				// The stored chunk is fresher than anything we can
				// rebuild: leave it (see the residue discussion).
				ahead = append(ahead, shard)
			default:
				failed = append(failed, shard)
				failErr = rerr
			}
			return true
		})
		sort.Ints(ahead)
		sort.Ints(failed)
		if len(failed) == 0 {
			return repaired, ahead, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return repaired, ahead, opErr("repair", stripe, cerr)
		}
		if len(failed) >= lastFailed {
			return repaired, ahead, fmt.Errorf("core: repair stalled on shards %v: %w", failed, failErr)
		}
		lastFailed = len(failed)
	}
	return repaired, ahead, fmt.Errorf("core: repair did not converge")
}

// RepairShardForce is RepairShard without the version guard: the
// rebuilt chunk is installed unconditionally. Use only with writers
// quiesced, to clear failed-write residue whose version numbers run
// *ahead* of the cluster's consistent state (the guarded repair
// refuses to regress them).
func (s *System) RepairShardForce(ctx context.Context, stripe uint64, shard int) error {
	if shard < 0 || shard >= s.code.N() {
		return fmt.Errorf("%w: shard %d of n=%d", ErrBadIndex, shard, s.code.N())
	}
	if _, err := s.stripeBlockSize(stripe); err != nil {
		return err
	}
	vector, shards, recs, err := s.freshestConsistentSet(ctx, stripe, shard)
	if err != nil {
		return err
	}
	rebuilt := blockpool.GetBlock(len(shards[firstPresent(shards)]))
	defer rebuilt.Release()
	if err := s.code.RepairShardInto(rebuilt.B, shard, shards); err != nil {
		return err
	}
	versions, sums, err := s.repairInstallMeta(shard, vector, rebuilt.B, recs)
	if err != nil {
		return err
	}
	if err := s.nodes[shard].PutChunk(ctx, chunkID(stripe, shard), rebuilt.B, versions, sums...); err != nil {
		return err
	}
	s.metrics.Repairs.Add(1)
	return nil
}

// RepairNode repairs every seeded stripe's shard stored on node
// `shard`, fanning the per-stripe repairs out in parallel (bounded, so
// a node-wide rebuild does not starve foreground traffic). It returns
// the number of chunks rebuilt and the error of the lowest-numbered
// failing stripe (continuing past per-stripe failures, as the
// sequential sweep did).
func (s *System) RepairNode(ctx context.Context, shard int) (int, error) {
	stripes := s.Stripes()
	sort.Slice(stripes, func(i, j int) bool { return stripes[i] < stripes[j] })
	repaired := 0
	errIdx := -1
	var errAt error
	Fanout(ctx, s.bulkLimit(), len(stripes), func(cctx context.Context, i int) (struct{}, error) {
		return struct{}{}, s.RepairShard(cctx, stripes[i], shard)
	}, func(i int, _ struct{}, err error) bool {
		if err == nil {
			repaired++
			return true
		}
		if errIdx < 0 || i < errIdx {
			errIdx = i
			errAt = fmt.Errorf("stripe %d: %w", stripes[i], err)
		}
		return true
	})
	if errAt != nil {
		if cerr := ctx.Err(); cerr != nil {
			return repaired, opErr("repair", stripes[errIdx], cerr)
		}
		return repaired, errAt
	}
	return repaired, nil
}

// freshestConsistentSet gathers every reachable shard except `exclude`
// and returns the mutually consistent set with the freshest version
// vector (componentwise max, ties broken deterministically) that has
// at least k members, as a full n-slot shard array for the erasure
// decoder plus the set's version vector and the members' cross-checksum
// records (keyed by shard) for install-time verification.
func (s *System) freshestConsistentSet(ctx context.Context, stripe uint64, exclude int) ([]uint64, [][]byte, map[int][]client.BlockSum, error) {
	k, n := s.code.K(), s.code.N()
	type cand struct {
		shard    int
		data     []byte
		versions []uint64
		sums     []client.BlockSum
	}
	// Gather every reachable shard in parallel; no early termination —
	// repair wants the *freshest* consistent set, so every survivor's
	// answer matters.
	var parity []cand
	data := make(map[int]cand)
	Fanout(ctx, s.opLimit(), n, func(cctx context.Context, j int) (client.Chunk, error) {
		if j == exclude {
			return client.Chunk{}, errShardExcluded
		}
		return s.nodes[j].ReadChunk(cctx, chunkID(stripe, j))
	}, func(j int, chunk client.Chunk, err error) bool {
		if err != nil {
			if isCorruptErr(err) {
				// A self-detected-rotten or quarantined chunk: it simply
				// does not survive into the gather, and the rebuild
				// replaces it — but record the observation.
				s.reportCorrupt(j)
			}
			return true
		}
		c := cand{shard: j, data: chunk.Data, versions: chunk.Versions, sums: chunk.Sums}
		if j < k {
			if len(chunk.Versions) == 1 {
				data[j] = c
			}
		} else if len(chunk.Versions) == k {
			parity = append(parity, c)
		}
		return true
	})
	// Deterministic grouping regardless of arrival order.
	sort.Slice(parity, func(i, j int) bool { return parity[i].shard < parity[j].shard })
	// Candidate vectors: each distinct parity vector, plus the vector
	// assembled purely from data shards when all k-1..k of them agree
	// (needed when no parity survives).
	type group struct {
		vector  []uint64
		members []cand
	}
	groups := make(map[string]*group)
	addGroup := func(vec []uint64) *group {
		key := vectorKey(vec)
		g, ok := groups[key]
		if !ok {
			g = &group{vector: append([]uint64(nil), vec...)}
			groups[key] = g
		}
		return g
	}
	for _, c := range parity {
		g := addGroup(c.versions)
		g.members = append(g.members, c)
	}
	if len(data) == k || (exclude < k && len(data) == k-1) {
		// All surviving data shards present: their own versions form a
		// candidate vector (filling the excluded slot from any parity
		// is unnecessary — with no parity constraint any value works
		// only if the set itself reaches k members).
		vec := make([]uint64, k)
		complete := true
		for t := 0; t < k; t++ {
			if c, ok := data[t]; ok {
				vec[t] = c.versions[0]
			} else if t != exclude {
				complete = false
			}
		}
		if complete && len(data) >= k {
			addGroup(vec)
		}
	}
	var keys []string
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var bestVec []uint64
	var bestMembers []cand
	for _, key := range keys {
		g := groups[key]
		members := append([]cand(nil), g.members...)
		for t := 0; t < k; t++ {
			c, ok := data[t]
			if !ok || c.versions[0] != g.vector[t] {
				continue
			}
			members = append(members, c)
		}
		if len(members) < k {
			continue
		}
		if bestVec == nil || vectorFresher(g.vector, bestVec) {
			bestVec = g.vector
			bestMembers = members
		}
	}
	if bestVec == nil {
		if cerr := ctx.Err(); cerr != nil {
			// Nodes stopped answering because the context expired, not
			// because the stripe degraded.
			return nil, nil, nil, opErr("repair", stripe, cerr)
		}
		return nil, nil, nil, fmt.Errorf("%w: no %d consistent shards survive", ErrNotReadable, k)
	}
	shards := make([][]byte, n)
	recs := make(map[int][]client.BlockSum, len(bestMembers))
	for _, c := range bestMembers {
		shards[c.shard] = c.data
		if len(c.sums) > 0 {
			recs[c.shard] = c.sums
		}
	}
	return bestVec, shards, recs, nil
}

// vectorFresher reports whether a is strictly fresher than b: greater
// in some component and not smaller in the componentwise sum (a simple
// total preference; concurrent residue vectors are incomparable and
// resolved by the deterministic key order of the caller).
func vectorFresher(a, b []uint64) bool {
	var sa, sb uint64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	return sa > sb
}
