package core

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"trapquorum/internal/dispatch"
)

// This file is the concurrent dispatch engine shared by the protocol's
// hot paths. All node RPCs of one quorum operation are issued through
// Fanout: a bounded worker fan-out that streams settled results back to
// the operation in completion order, supports early termination
// ("first-k": stop as soon as a quorum or decodable set is in hand,
// cancelling stragglers through the context), and guarantees that every
// issued RPC has settled before it returns — the property the write
// path's rollback bookkeeping depends on. Read-only RPCs can
// additionally be hedged: re-issued once after a configurable delay so
// one slow node does not drag the whole operation to its tail latency.
//
// The generic fan-out itself lives in internal/dispatch so that leaf
// layers (the erasure data plane's stripe-parallel coder) share the
// same engine without an import cycle; this wrapper is the protocol's
// front door to it and keeps the core API stable for the sibling
// internal layers (the service store's bulk repair) that dispatch
// through core.Fanout.

// Fanout issues calls 0..n-1 concurrently through the shared dispatch
// engine. See dispatch.Fanout for the full contract: bounded in-flight
// RPCs, completion-order observation, early termination on observe
// returning false, and settle-before-return — an RPC that settles with
// a context error has left the node unchanged, and one that settles
// with any other outcome reports what the node really did.
func Fanout[T any](ctx context.Context, limit, n int, call func(context.Context, int) (T, error), observe func(idx int, val T, err error) bool) {
	dispatch.Fanout(ctx, limit, n, call, observe)
}

// HedgeConfig enables tail-latency hedging of read-path RPCs: a
// version probe or chunk read that has not settled after the hedge
// delay is re-issued once, and the first result wins. Hedging is
// restricted to read-only RPCs — duplicating a conditional update
// could misreport a version conflict — and is safe for any backend
// honouring the client contract, because both attempts are idempotent
// and the loser is cancelled.
//
// The delay is either fixed (Delay) or adaptive (Quantile): with
// Quantile > 0 the engine tracks a sliding window of observed
// read-RPC latencies and hedges after that quantile of the window,
// never earlier than Delay. The zero value disables hedging.
type HedgeConfig struct {
	// Delay is the fixed hedge delay, and the floor under the adaptive
	// delay when Quantile is also set.
	Delay time.Duration
	// Quantile, when in (0, 1), hedges after the q-quantile of
	// recently observed read-RPC latencies (e.g. 0.95: only the
	// slowest ~5% of RPCs are hedged). Until enough samples exist,
	// Delay alone applies.
	Quantile float64
}

// enabled reports whether the configuration turns hedging on.
func (h HedgeConfig) enabled() bool { return h.Delay > 0 || h.Quantile > 0 }

// hedgeWindow is the sliding-window size of the adaptive delay
// estimator; hedgeMinSamples gates the estimate until the window has
// seen enough RPCs to be meaningful.
const (
	hedgeWindow     = 128
	hedgeMinSamples = 16
	hedgeRecompute  = 16
)

// hedger holds the hedging policy plus the latency window the adaptive
// delay is estimated from. record and delay are called from collector
// and worker goroutines concurrently; the window is guarded by a
// spin-free design: samples land in a fixed ring under an atomic
// cursor and the quantile is recomputed every hedgeRecompute records.
type hedger struct {
	cfg    HedgeConfig
	hedges *atomic.Int64 // protocol-level hedged-RPC counter

	cursor atomic.Int64 // total samples recorded
	ring   [hedgeWindow]atomic.Int64
	cached atomic.Int64 // current adaptive delay in nanoseconds
}

// newHedger builds a hedger, or returns nil when the config disables
// hedging (a nil hedger makes hedged() a plain call).
func newHedger(cfg HedgeConfig, hedges *atomic.Int64) *hedger {
	if !cfg.enabled() {
		return nil
	}
	return &hedger{cfg: cfg, hedges: hedges}
}

// record feeds one observed RPC latency into the window and refreshes
// the cached quantile estimate periodically.
func (h *hedger) record(d time.Duration) {
	if h == nil || h.cfg.Quantile <= 0 {
		return
	}
	n := h.cursor.Add(1)
	h.ring[(n-1)%hedgeWindow].Store(int64(d))
	if n < hedgeMinSamples || n%hedgeRecompute != 0 {
		return
	}
	size := int64(hedgeWindow)
	if n < size {
		size = n
	}
	samples := make([]int64, size)
	for i := range samples {
		samples[i] = h.ring[i].Load()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(h.cfg.Quantile * float64(size-1))
	h.cached.Store(samples[idx])
}

// delay returns the hedge delay currently in force: the adaptive
// quantile estimate when available, floored by the fixed delay.
func (h *hedger) delay() time.Duration {
	d := h.cfg.Delay
	if q := time.Duration(h.cached.Load()); q > d {
		d = q
	}
	return d
}

// hedged performs a read-only call with tail-latency hedging: if the
// primary attempt has not settled after the hedger's current delay, an
// identical second attempt is issued and the first result to settle
// wins (the loser is cancelled with the wrapper's context and drains
// into a buffered channel). A nil hedger degrades to a plain call.
func hedged[T any](ctx context.Context, h *hedger, call func(context.Context) (T, error)) (T, error) {
	if h == nil {
		return call(ctx)
	}
	start := time.Now()
	delay := h.delay()
	if delay <= 0 {
		v, err := call(ctx)
		if err == nil {
			// Only successful settles feed the latency window: a
			// fail-fast error (node down) or a cancellation is not a
			// latency observation, and letting those near-zero samples
			// in would collapse the quantile estimate exactly when the
			// cluster degrades, over-hedging it.
			h.record(time.Since(start))
		}
		return v, err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		v       T
		err     error
		elapsed time.Duration // this attempt's own latency
	}
	ch := make(chan res, 2)
	launch := func() {
		attemptStart := time.Now()
		go func() {
			v, err := call(cctx)
			ch <- res{v, err, time.Since(attemptStart)}
		}()
	}
	launch()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched, settled := 1, 0
	var firstErr error
	for {
		select {
		case r := <-ch:
			settled++
			if r.err == nil {
				// Record the winning attempt's own latency — not the
				// wall time since the primary launch, which for a
				// winning hedge would fold the hedge delay in and
				// ratchet the adaptive quantile upward until hedging
				// dampens itself off.
				h.record(r.elapsed) // see above: successes only
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if settled == launched {
				// No attempt left in flight. (An error before the
				// timer fired never launches the hedge: the node
				// answered — re-asking it buys nothing.)
				var zero T
				return zero, firstErr
			}
			// The other attempt is still in flight: a fast failure
			// must not beat a slow success, or hedging would turn a
			// momentary blip (say, a crash racing an RPC already past
			// its delay window) into a lost shard. Keep waiting.
		case <-timer.C:
			if launched == 1 && settled == 0 {
				launched++
				if h.hedges != nil {
					h.hedges.Add(1)
				}
				launch()
			}
		}
	}
}

// opLimit is the per-operation in-flight RPC bound: the configured
// concurrency, or unbounded (contact every node of the operation at
// once) when unset.
func (s *System) opLimit() int { return s.opts.Concurrency }

// DefaultBulkLimit bounds fan-out across stripes or shards in
// maintenance sweeps (RepairStripe rounds, RepairNode, the service
// layer's node-wide repair), where "everything at once" could mean
// thousands of concurrent quorum operations: when no concurrency is
// configured, sweeps keep this many repairs in flight so rebuild
// traffic does not starve foreground I/O.
const DefaultBulkLimit = 16

// BulkLimit resolves the sweep bound for the given configured
// concurrency: the configuration wins, DefaultBulkLimit otherwise.
// Shared with the service layer so the policy lives in one place.
func BulkLimit(concurrency int) int {
	if concurrency > 0 {
		return concurrency
	}
	return DefaultBulkLimit
}

func (s *System) bulkLimit() int { return BulkLimit(s.opts.Concurrency) }
