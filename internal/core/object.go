package core

import (
	"context"
	"fmt"
)

// WriteObject stores an arbitrary buffer as one stripe: the buffer is
// split into k equally sized blocks (zero-padded), encoded, and seeded
// across the nodes. It is the bootstrap path for whole objects; use
// WriteBlock for subsequent in-place block updates.
func (s *System) WriteObject(ctx context.Context, stripe uint64, payload []byte) error {
	blocks := s.code.Split(payload)
	if err := s.SeedStripe(ctx, stripe, blocks); err != nil {
		return err
	}
	s.setObjectSize(stripe, len(payload))
	return nil
}

func (s *System) setObjectSize(stripe uint64, size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.objectSizes == nil {
		s.objectSizes = make(map[uint64]int)
	}
	s.objectSizes[stripe] = size
}

func (s *System) objectSize(stripe uint64) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, ok := s.objectSizes[stripe]
	return size, ok
}

// ReadObject reads back a buffer stored with WriteObject, issuing one
// quorum read per data block and joining the results.
func (s *System) ReadObject(ctx context.Context, stripe uint64) ([]byte, error) {
	size, ok := s.objectSize(stripe)
	if !ok {
		return nil, fmt.Errorf("%w: %d has no object mapping", ErrUnknownStripe, stripe)
	}
	k := s.code.K()
	blocks := make([][]byte, k)
	for i := 0; i < k; i++ {
		data, _, err := s.ReadBlock(ctx, stripe, i)
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
		blocks[i] = data
	}
	return s.code.Join(blocks, size)
}
