package core

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testGate is a concurrency-safe block list standing in for the
// transport's circuit breakers: blocked nodes report unusable through
// Options.NodeGate.
type testGate struct {
	mu      sync.Mutex
	blocked map[int]bool
}

func newTestGate() *testGate { return &testGate{blocked: make(map[int]bool)} }

func (g *testGate) allow(node int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.blocked[node]
}

func (g *testGate) block(node int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.blocked[node] = true
}

func (g *testGate) unblock(node int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.blocked, node)
}

// TestNodeGateSkipsTransport pins the gate contract: operations
// against a gated node fail locally and the node's transport is never
// touched, while reads route around it by decoding.
func TestNodeGateSkipsTransport(t *testing.T) {
	gate := newTestGate()
	ts := fig3System(t, Options{NodeGate: gate.allow})
	data := ts.seed(t, 1, 64)

	gate.block(0)
	m := ts.shardNode(0).Metrics()
	reads, probes := m.Reads.Load(), m.VersionQueries.Load()

	for i := 0; i < 3; i++ {
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, 0)
		if err != nil {
			t.Fatalf("read with gated data node: %v", err)
		}
		if !bytes.Equal(got, data[0]) {
			t.Fatal("read around gated node returned wrong data")
		}
	}
	if r := m.Reads.Load(); r != reads {
		t.Fatalf("gated node served %d chunk reads; transport should never be touched", r-reads)
	}
	if p := m.VersionQueries.Load(); p != probes {
		t.Fatalf("gated node served %d version probes; transport should never be touched", p-probes)
	}
}

// slowOnce installs the hedging test's cluster model on node j: its
// first RPC stalls past any hedge delay, later RPCs are instant. The
// returned counter observes every transport-level call the node saw.
func slowOnce(ts *testSystem, j int) *atomic.Int64 {
	var calls atomic.Int64
	ts.cluster.SetNodeDelay(j, func(string) time.Duration {
		if calls.Add(1) == 1 {
			return stragglerDelay
		}
		return 0
	})
	return &calls
}

// TestGatedNodeLeavesAndRejoinsHedgePool pins the hedging × breaker
// interaction. A node behind an open breaker fails instantly — before
// any hedge timer fires — so the engine never launches a hedge toward
// it (an open breaker is never a hedge target: zero transport calls
// reach it even while every other slow node is being hedged). Once
// the gate reopens (the transport's half-open probe succeeded), the
// same node is back in the hedge pool: its straggling first RPC is
// re-issued, observable as a second transport call and an advancing
// Metrics.HedgedRPCs.
func TestGatedNodeLeavesAndRejoinsHedgePool(t *testing.T) {
	gate := newTestGate()
	ts := fig3System(t, Options{
		Hedge:    HedgeConfig{Delay: 10 * time.Millisecond},
		NodeGate: gate.allow,
	})
	data := ts.seed(t, 1, 64)

	// Every node's first RPC stalls, so every contacted node must be
	// hedged for the read to finish quickly — except node 0, whose
	// open breaker makes its RPCs fail locally before the hedge timer
	// ever starts.
	counters := make([]*atomic.Int64, ts.code.N())
	for j := 0; j < ts.code.N(); j++ {
		counters[j] = slowOnce(ts, j)
	}
	gate.block(0)

	timeOp(t, "read with gated straggler", func() error {
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, 0)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data[0]) {
			t.Fatal("read with gated straggler returned wrong data")
		}
		return nil
	})
	afterOpen := ts.sys.Metrics().HedgedRPCs
	if afterOpen == 0 {
		t.Fatal("no RPCs were hedged: the straggling cluster should force hedges")
	}
	if n := counters[0].Load(); n != 0 {
		t.Fatalf("node behind an open breaker saw %d transport calls (hedge targeted a gated node)", n)
	}

	// The breaker's half-open probe succeeds: the gate reopens and the
	// node rejoins the hedge pool. Everyone is slow-once again; this
	// time node 0 must be hedged like its peers — its stalled primary
	// plus the re-issued hedge are two transport calls.
	gate.unblock(0)
	for j := 0; j < ts.code.N(); j++ {
		counters[j] = slowOnce(ts, j)
	}

	timeOp(t, "read after gate reopens", func() error {
		got, _, err := ts.sys.ReadBlock(context.Background(), 1, 0)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data[0]) {
			t.Fatal("read after heal returned wrong data")
		}
		return nil
	})
	if m := ts.sys.Metrics(); m.HedgedRPCs <= afterOpen {
		t.Fatal("healed node was not restored to the hedge pool: no further RPCs hedged")
	}
	if n := counters[0].Load(); n < 2 {
		t.Fatalf("healed node saw %d transport calls; want >= 2 (stalled primary + hedge)", n)
	}
}
