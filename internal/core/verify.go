package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"

	"trapquorum/client"
	"trapquorum/internal/erasure"
)

// This file is the Byzantine-read half of the protocol: everything
// that turns the cross-checksum records distributed at write time
// (see DESIGN.md §6) into a verified read path. The invariant the
// reader enforces is that a block is only served when its bytes match
// the plurality of *other* nodes' record opinions for the pinned
// version — a node never vouches for its own content.

// sumOpinion is the expected content hash of a block at one version,
// as established by a plurality of parity record opinions. known is
// false when no opinion (or only a tie) was available, in which case
// verification is skipped — the pre-checksum behaviour.
type sumOpinion struct {
	sum   uint64
	known bool
}

// isCorruptErr reports whether a node answer carries the corruption
// sentinel (engine self-sum mismatch or diskstore quarantine).
func isCorruptErr(err error) bool { return errors.Is(err, client.ErrCorrupt) }

// tallyOpinion folds one parity record's opinion about data block
// `block` at `version` into the tally. Records too short for the slot
// or carrying a different (stale or in-flight) version abstain.
func tallyOpinion(tally map[uint64]int, rec []client.BlockSum, block int, version uint64) {
	if block >= len(rec) || rec[block].Version != version {
		return
	}
	tally[rec[block].Sum]++
}

// pluralitySum resolves a tally: the strictly most-voted sum wins; an
// empty tally or a tie between different sums yields unknown (serving
// unverified is the pre-checksum behaviour; inventing a majority from
// a tie would let a single liar veto honest bytes).
func pluralitySum(tally map[uint64]int) sumOpinion {
	best, bestCount, tied := uint64(0), 0, false
	for sum, count := range tally {
		switch {
		case count > bestCount:
			best, bestCount, tied = sum, count, false
		case count == bestCount && sum != best:
			tied = true
		}
	}
	if bestCount == 0 || tied {
		return sumOpinion{}
	}
	return sumOpinion{sum: best, known: true}
}

// gatherExpected establishes the expected content hash of a block by
// probing every parity shard's record explicitly. Used when the
// version-check quorum settled without a single parity opinion (a
// one-node level can win on the data node alone) — serving the data
// node's bytes on its own say-so would let a lying N_i self-certify.
func (s *System) gatherExpected(ctx context.Context, stripe uint64, block int, version uint64) sumOpinion {
	k, n := s.code.K(), s.code.N()
	tally := make(map[uint64]int)
	Fanout(ctx, s.opLimit(), n-k, func(cctx context.Context, i int) (verProbe, error) {
		shard := k + i
		vers, sums, err := s.nodes[shard].ReadVersions(cctx, chunkID(stripe, shard))
		return verProbe{versions: vers, sums: sums}, err
	}, func(i int, pr verProbe, err error) bool {
		if err != nil {
			if isCorruptErr(err) {
				s.reportCorrupt(k + i)
			}
			return true
		}
		tallyOpinion(tally, pr.sums, block, version)
		return true
	})
	return pluralitySum(tally)
}

// verifiedDecode is the escalation path of Case 2: a fast decode
// produced bytes the record plurality disavows, so some member of the
// chosen set lied (or rotted undetected). It gathers every shard with
// no early termination, re-establishes the expected hash from the
// complete record population, then searches survivor sets — the full
// consistent set first, then leave-one-out — until a set of exactly k
// shards decodes to the expected content. The verified basis is then
// used to re-derive every other member's shard and pinpoint which
// node served wrong bytes.
//
// The search is sized for the protocol's stated guarantee (any single
// corrupted shard is detected and recovered): with one bad member,
// dropping it is one of the leave-one-out iterations and the
// remaining members are all honest.
func (s *System) verifiedDecode(ctx context.Context, stripe uint64, block int, version uint64, expect sumOpinion) ([]byte, error) {
	k, n := s.code.K(), s.code.N()
	chunks := make([]client.Chunk, n)
	have := make([]bool, n)
	Fanout(ctx, s.opLimit(), n, func(cctx context.Context, shard int) (client.Chunk, error) {
		return s.nodes[shard].ReadChunk(cctx, chunkID(stripe, shard))
	}, func(shard int, chunk client.Chunk, err error) bool {
		if err != nil {
			if isCorruptErr(err) {
				s.reportCorrupt(shard)
			}
			return true
		}
		chunks[shard] = chunk
		have[shard] = true
		return true
	})
	// Re-establish the expected hash over the complete record
	// population; the caller's opinion (from a partial quorum) breaks
	// an otherwise unknown outcome.
	tally := make(map[uint64]int)
	for shard := k; shard < n; shard++ {
		if have[shard] {
			tallyOpinion(tally, chunks[shard].Sums, block, version)
		}
	}
	if full := pluralitySum(tally); full.known {
		expect = full
	}
	if !expect.known {
		return nil, fmt.Errorf("%w: stripe %d block %d version %d: no record majority to verify against", ErrNotReadable, stripe, block, version)
	}
	// Group by full version vector, as the fast path does.
	groups := make(map[string]*decodeGroup)
	keys := []string(nil)
	for shard := k; shard < n; shard++ {
		if !have[shard] || len(chunks[shard].Versions) != k || chunks[shard].Versions[block] != version {
			continue
		}
		key := vectorKey(chunks[shard].Versions)
		g, ok := groups[key]
		if !ok {
			g = &decodeGroup{vector: chunks[shard].Versions, data: make(map[int]shardCandidate)}
			groups[key] = g
			keys = append(keys, key)
		}
		g.parity = append(g.parity, shardCandidate{shard: shard, data: chunks[shard].Data, versions: chunks[shard].Versions})
	}
	sort.Strings(keys) // deterministic group order
	for _, key := range keys {
		g := groups[key]
		members := append([]shardCandidate(nil), g.parity...)
		for shard := 0; shard < k; shard++ {
			if shard == block || !have[shard] || len(chunks[shard].Versions) != 1 {
				continue
			}
			if chunks[shard].Versions[0] != g.vector[shard] {
				continue
			}
			members = append(members, shardCandidate{shard: shard, data: chunks[shard].Data, versions: chunks[shard].Versions})
		}
		sort.Slice(members, func(i, j int) bool { return members[i].shard < members[j].shard })
		if len(members) < k {
			continue
		}
		if out := s.searchVerifiedSet(block, version, expect, members); out != nil {
			return out, nil
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	return nil, fmt.Errorf("%w: stripe %d block %d version %d: no survivor set of %d shards decodes to the record majority: %w",
		ErrNotReadable, stripe, block, version, k, client.ErrCorrupt)
}

// searchVerifiedSet tries bases of exactly k members — first without
// exclusions, then dropping each member in turn — until one decodes
// block to the expected hash. On success it re-derives every non-basis
// member's shard from the verified basis and reports mismatching
// members as corrupt, then returns the decoded block. nil means no
// basis verified.
func (s *System) searchVerifiedSet(block int, version uint64, expect sumOpinion, members []shardCandidate) []byte {
	n := s.code.N()
	shards := make([][]byte, n)
	inBasis := make([]bool, n)
	for drop := -1; drop < len(members); drop++ {
		for i := range shards {
			shards[i] = nil
			inBasis[i] = false
		}
		basis := 0
		for i, m := range members {
			if i == drop || basis == s.code.K() {
				continue
			}
			shards[m.shard] = m.data
			inBasis[m.shard] = true
			basis++
		}
		if basis < s.code.K() {
			return nil // too few members left to form a basis
		}
		out, err := s.code.DecodeBlock(block, shards)
		if err != nil || erasure.Sum64(out) != expect.sum {
			continue
		}
		// Verified basis in hand: every other member's shard is now
		// derivable; members serving different bytes are the culprits.
		for _, m := range members {
			if inBasis[m.shard] {
				continue
			}
			truth, rerr := s.code.RepairShard(m.shard, shards)
			if rerr != nil {
				continue
			}
			if !bytes.Equal(truth, m.data) {
				s.reportCorrupt(m.shard)
			}
		}
		return out
	}
	return nil
}
