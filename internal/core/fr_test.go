package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// newFRSystem builds the Figure-3 trapezoid (8 positions) over a
// dedicated 8-node cluster.
func newFRSystem(t testing.TB) (*FRSystem, *sim.Cluster) {
	t.Helper()
	cfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := sim.NewCluster(cfg.Shape.NbNodes())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	nodes := make([]NodeClient, cluster.Size())
	for i := range nodes {
		nodes[i] = cluster.Node(i)
	}
	sys, err := NewFRSystem(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return sys, cluster
}

func TestNewFRSystemValidation(t *testing.T) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	cluster, _ := sim.NewCluster(8)
	defer cluster.Close()
	nodes := make([]NodeClient, 8)
	for i := range nodes {
		nodes[i] = cluster.Node(i)
	}
	if _, err := NewFRSystem(cfg, nodes[:7]); err == nil {
		t.Error("wrong node count accepted")
	}
	bad := append([]NodeClient(nil), nodes...)
	bad[2] = nil
	if _, err := NewFRSystem(cfg, bad); err == nil {
		t.Error("nil node accepted")
	}
	badCfg := trapezoid.Config{Shape: trapezoid.Shape{A: -1, B: 1, H: 0}, W: []int{1}}
	if _, err := NewFRSystem(badCfg, nodes); err == nil {
		t.Error("invalid trapezoid accepted")
	}
}

func TestFRSeedReadWrite(t *testing.T) {
	sys, _ := newFRSystem(t)
	data := []byte("replicated block")
	if err := sys.SeedBlock(context.Background(), 1, data); err != nil {
		t.Fatal(err)
	}
	got, version, err := sys.ReadBlock(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || !bytes.Equal(got, data) {
		t.Fatalf("got v%d %q", version, got)
	}
	next := []byte("updated contents")
	if err := sys.WriteBlock(context.Background(), 1, next); err != nil {
		t.Fatal(err)
	}
	got, version, err = sys.ReadBlock(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || !bytes.Equal(got, next) {
		t.Fatalf("got v%d %q", version, got)
	}
}

func TestFRValidationErrors(t *testing.T) {
	sys, _ := newFRSystem(t)
	if err := sys.SeedBlock(context.Background(), 1, nil); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := sys.ReadBlock(context.Background(), 9); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
	if err := sys.WriteBlock(context.Background(), 9, []byte{1}); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
	if err := sys.SeedBlock(context.Background(), 1, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteBlock(context.Background(), 1, []byte{1}); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("err = %v", err)
	}
}

func TestFRSeedRequiresAllNodes(t *testing.T) {
	sys, cluster := newFRSystem(t)
	cluster.Crash(5)
	if err := sys.SeedBlock(context.Background(), 1, []byte{1}); !errors.Is(err, ErrSeedIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestFRReadSurvivesMinorityFailures(t *testing.T) {
	sys, cluster := newFRSystem(t)
	data := []byte("hold on")
	if err := sys.SeedBlock(context.Background(), 1, data); err != nil {
		t.Fatal(err)
	}
	// Positions: level 0 = {0,1,2} (r_0=2), level 1 = {3..7} (r_1=3).
	cluster.Crash(0)
	cluster.Crash(3)
	cluster.Crash(4)
	got, _, err := sys.ReadBlock(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong replica content")
	}
}

func TestFRReadFailsWhenChecksStarved(t *testing.T) {
	sys, cluster := newFRSystem(t)
	if err := sys.SeedBlock(context.Background(), 1, []byte{7}); err != nil {
		t.Fatal(err)
	}
	// Break level 0 (need 2 of 3) and level 1 (need 3 of 5).
	for _, p := range []int{0, 1, 3, 4, 5} {
		cluster.Crash(p)
	}
	if _, _, err := sys.ReadBlock(context.Background(), 1); !errors.Is(err, ErrNotReadable) {
		t.Fatalf("err = %v", err)
	}
	if m := sys.Metrics(); m.FailedReads != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFRWriteQuorumFailureRollsBack(t *testing.T) {
	sys, cluster := newFRSystem(t)
	data := []byte("stable")
	if err := sys.SeedBlock(context.Background(), 1, data); err != nil {
		t.Fatal(err)
	}
	// Starve level 1: crash 3 of its 5 nodes (w_1 = 3).
	cluster.Crash(5)
	cluster.Crash(6)
	cluster.Crash(7)
	if err := sys.WriteBlock(context.Background(), 1, []byte("newval")); !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("err = %v", err)
	}
	got, version, err := sys.ReadBlock(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || !bytes.Equal(got, data) {
		t.Fatalf("rollback incomplete: v%d %q", version, got)
	}
	if m := sys.Metrics(); m.Rollbacks != 1 || m.FailedWrites != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFRWriteToleratesPartialLevel(t *testing.T) {
	sys, cluster := newFRSystem(t)
	if err := sys.SeedBlock(context.Background(), 1, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	// 2 of level 1 down: 3 remain = w_1. 1 of level 0 down: 2 = w_0.
	cluster.Crash(2)
	cluster.Crash(6)
	cluster.Crash(7)
	if err := sys.WriteBlock(context.Background(), 1, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, version, err := sys.ReadBlock(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || string(got) != "bbbb" {
		t.Fatalf("v%d %q", version, got)
	}
	// Revived nodes are stale but reads still find the latest version
	// through the quorum intersection.
	cluster.Restart(2)
	got, _, err = sys.ReadBlock(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bbbb" {
		t.Fatal("stale replica leaked")
	}
}

func TestFRRepairReplica(t *testing.T) {
	sys, cluster := newFRSystem(t)
	if err := sys.SeedBlock(context.Background(), 1, []byte("v1data")); err != nil {
		t.Fatal(err)
	}
	cluster.Crash(4)
	if err := sys.WriteBlock(context.Background(), 1, []byte("v2data")); err != nil {
		t.Fatal(err)
	}
	cluster.Restart(4)
	if err := sys.RepairReplica(context.Background(), 1, 4); err != nil {
		t.Fatal(err)
	}
	chunk, err := cluster.Node(4).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(chunk.Data) != "v2data" || chunk.Versions[0] != 2 {
		t.Fatalf("repaired replica = v%d %q", chunk.Versions[0], chunk.Data)
	}
	if err := sys.RepairReplica(context.Background(), 1, 9); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("err = %v", err)
	}
	if err := sys.RepairReplica(context.Background(), 7, 4); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
}

// TestFRLinearizabilityUnderCrashSchedules mirrors the ERC safety
// test on the full-replication protocol.
func TestFRLinearizabilityUnderCrashSchedules(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		sys, cluster := newFRSystem(t)
		r := rand.New(rand.NewSource(seed))
		expected := []byte("initial!")
		if err := sys.SeedBlock(context.Background(), 1, expected); err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 200; op++ {
			switch r.Intn(8) {
			case 0:
				if cluster.AliveCount() > 1 {
					cluster.Crash(r.Intn(8))
				}
			case 1:
				cluster.Restart(r.Intn(8))
			case 2, 3, 4:
				x := make([]byte, 8)
				r.Read(x)
				if err := sys.WriteBlock(context.Background(), 1, x); err == nil {
					expected = x
				} else if !errors.Is(err, ErrWriteFailed) {
					t.Fatalf("unexpected write error %v", err)
				}
			default:
				got, _, err := sys.ReadBlock(context.Background(), 1)
				if err != nil {
					if !errors.Is(err, ErrNotReadable) {
						t.Fatalf("unexpected read error %v", err)
					}
					continue
				}
				if !bytes.Equal(got, expected) {
					t.Fatalf("seed %d op %d: stale read", seed, op)
				}
			}
		}
	}
}

// BenchmarkFRWrite measures one TRAP-FR block write: the full block
// travels to |WQ| = 5 replicas, versus TRAP-ERC's one block plus four
// deltas — compare with BenchmarkProtocolEndToEndWrite in the root
// package (A6 experiment).
func BenchmarkFRWrite(b *testing.B) {
	sys, _ := newFRSystem(b)
	data := bytes.Repeat([]byte{1}, 4096)
	if err := sys.SeedBlock(context.Background(), 1, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.WriteBlock(context.Background(), 1, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFRRead(b *testing.B) {
	sys, _ := newFRSystem(b)
	data := bytes.Repeat([]byte{1}, 4096)
	if err := sys.SeedBlock(context.Background(), 1, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.ReadBlock(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
	}
}
