package core

import (
	"context"
	"fmt"

	"trapquorum/client"
)

// gatedNode wraps one node client behind Options.NodeGate: when the
// gate reports the node unusable (typically: its circuit breaker is
// open), every operation fails locally with ErrNodeDown before the
// transport is touched. The instant local failure is what keeps the
// hedging engine honest — a gated node errors before any hedge timer
// fires, so hedges are never launched because of it and it is never
// picked as a hedge target.
type gatedNode struct {
	NodeClient
	node int
	gate func(node int) bool
}

// check consults the gate once per operation.
func (g *gatedNode) check() error {
	if g.gate(g.node) {
		return nil
	}
	return fmt.Errorf("%w: node %d: circuit open", client.ErrNodeDown, g.node)
}

func (g *gatedNode) ReadChunk(ctx context.Context, id client.ChunkID) (client.Chunk, error) {
	if err := g.check(); err != nil {
		return client.Chunk{}, err
	}
	return g.NodeClient.ReadChunk(ctx, id)
}

func (g *gatedNode) ReadVersions(ctx context.Context, id client.ChunkID) ([]uint64, []client.BlockSum, error) {
	if err := g.check(); err != nil {
		return nil, nil, err
	}
	return g.NodeClient.ReadVersions(ctx, id)
}

func (g *gatedNode) PutChunk(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.NodeClient.PutChunk(ctx, id, data, versions, sums...)
}

func (g *gatedNode) PutChunkIfFresher(ctx context.Context, id client.ChunkID, data []byte, versions []uint64, sums ...client.BlockSum) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.NodeClient.PutChunkIfFresher(ctx, id, data, versions, sums...)
}

func (g *gatedNode) CompareAndPut(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, data []byte, sum ...client.BlockSum) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.NodeClient.CompareAndPut(ctx, id, slot, expect, next, data, sum...)
}

func (g *gatedNode) CompareAndAdd(ctx context.Context, id client.ChunkID, slot int, expect, next uint64, delta []byte, sum ...client.BlockSum) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.NodeClient.CompareAndAdd(ctx, id, slot, expect, next, delta, sum...)
}

func (g *gatedNode) DeleteChunk(ctx context.Context, id client.ChunkID) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.NodeClient.DeleteChunk(ctx, id)
}
