package core

import (
	"context"
	"fmt"
	"sync"

	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// FRSystem implements TRAP-FR: the original trapezoidal protocol over
// full replication, the baseline the paper compares TRAP-ERC against.
// Every block is replicated verbatim on all Nbnode = n−k+1 trapezoid
// nodes; writes install the full block on at least w_l nodes per
// level, reads version-check r_l nodes of some level and then fetch
// the block from any replica carrying the latest version.
//
// The write path differs from TRAP-ERC only in what travels to the
// quorum: whole blocks instead of parity deltas — which is exactly the
// storage/traffic trade-off of equations (14)/(15).
type FRSystem struct {
	lay   *trapezoid.Layout
	nodes []NodeClient // one per trapezoid position

	mu      sync.Mutex
	blocks  map[uint64]int // block id -> size
	locks   map[uint64]*sync.Mutex
	metrics Metrics
}

// NewFRSystem assembles a full-replication trapezoid system. nodes[p]
// is the replica at trapezoid position p; len(nodes) must equal the
// trapezoid's node count.
func NewFRSystem(cfg trapezoid.Config, nodes []NodeClient) (*FRSystem, error) {
	lay, err := trapezoid.NewLayout(cfg)
	if err != nil {
		return nil, err
	}
	if len(nodes) != lay.NbNodes() {
		return nil, fmt.Errorf("core: got %d nodes, trapezoid needs %d", len(nodes), lay.NbNodes())
	}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("core: node %d is nil", i)
		}
	}
	return &FRSystem{
		lay:    lay,
		nodes:  append([]NodeClient(nil), nodes...),
		blocks: make(map[uint64]int),
		locks:  make(map[uint64]*sync.Mutex),
	}, nil
}

// Metrics returns a snapshot of the protocol counters.
func (s *FRSystem) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Writes:       s.metrics.Writes.Load(),
		FailedWrites: s.metrics.FailedWrites.Load(),
		DirectReads:  s.metrics.DirectReads.Load(),
		FailedReads:  s.metrics.FailedReads.Load(),
		Rollbacks:    s.metrics.Rollbacks.Load(),
		Repairs:      s.metrics.Repairs.Load(),
	}
}

// frChunk names block id's replica chunk (identical on every node).
func frChunk(id uint64) sim.ChunkID { return sim.ChunkID{Stripe: id} }

func (s *FRSystem) blockLock(id uint64) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.locks[id]
	if !ok {
		l = &sync.Mutex{}
		s.locks[id] = l
	}
	return l
}

// SeedBlock installs a block at version 1 on every replica. All nodes
// must be up (initial placement).
func (s *FRSystem) SeedBlock(ctx context.Context, id uint64, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("%w: empty block", ErrBlockSize)
	}
	for pos, n := range s.nodes {
		if err := n.PutChunk(ctx, frChunk(id), data, []uint64{1}); err != nil {
			return fmt.Errorf("%w: position %d: %w", ErrSeedIncomplete, pos, err)
		}
	}
	s.mu.Lock()
	s.blocks[id] = len(data)
	s.mu.Unlock()
	return nil
}

// checkVersion runs Step 1 of the read: scan levels until one yields
// r_l version responses; the maximum is the latest version.
func (s *FRSystem) checkVersion(ctx context.Context, id uint64) (version uint64, ok bool) {
	cfg := s.lay.Config()
	for l := 0; l <= cfg.Shape.H; l++ {
		need := cfg.ReadThreshold(l)
		counter := 0
		version = sim.NoVersion
		for _, pos := range s.lay.Level(l) {
			vers, _, err := s.nodes[pos].ReadVersions(ctx, frChunk(id))
			if err != nil || len(vers) != 1 {
				continue
			}
			if version == sim.NoVersion || vers[0] > version {
				version = vers[0]
			}
			counter++
			if counter == need {
				return version, true
			}
		}
	}
	return 0, false
}

// ReadBlock reads the block: version check, then fetch from any
// replica carrying the latest version (under full replication every
// current replica serves the data directly — the paper's point that
// FR reads need no reconstruction).
func (s *FRSystem) ReadBlock(ctx context.Context, id uint64) ([]byte, uint64, error) {
	s.mu.Lock()
	_, known := s.blocks[id]
	s.mu.Unlock()
	if !known {
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	version, ok := s.checkVersion(ctx, id)
	if !ok {
		if cerr := ctx.Err(); cerr != nil {
			// Nodes stopped answering because the context died, not
			// because the quorum degraded.
			return nil, 0, opErr("read", id, cerr)
		}
		s.metrics.FailedReads.Add(1)
		return nil, 0, fmt.Errorf("%w: no level reached its version check threshold", ErrNotReadable)
	}
	for pos := range s.nodes {
		chunk, err := s.nodes[pos].ReadChunk(ctx, frChunk(id))
		if err != nil || len(chunk.Versions) != 1 {
			continue
		}
		if chunk.Versions[0] >= version {
			s.metrics.DirectReads.Add(1)
			return chunk.Data, chunk.Versions[0], nil
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, 0, opErr("read", id, cerr)
	}
	s.metrics.FailedReads.Add(1)
	return nil, 0, fmt.Errorf("%w: no replica carries version %d", ErrNotReadable, version)
}

// WriteBlock writes the full block to at least w_l replicas on every
// level, rolling back on failure like the ERC variant.
func (s *FRSystem) WriteBlock(ctx context.Context, id uint64, data []byte) error {
	s.mu.Lock()
	size, known := s.blocks[id]
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	if len(data) != size {
		return fmt.Errorf("%w: got %d bytes, block uses %d", ErrBlockSize, len(data), size)
	}
	lock := s.blockLock(id)
	lock.Lock()
	defer lock.Unlock()

	old, oldVersion, err := s.readForUpdate(ctx, id)
	if err != nil {
		s.metrics.FailedWrites.Add(1)
		if cerr := ctx.Err(); cerr != nil {
			return &OpError{Op: "write", Stripe: id, Block: -1, Level: -1, Node: -1, Err: cerr}
		}
		return fmt.Errorf("%w: initial read failed: %v", ErrWriteFailed, err)
	}
	newVersion := oldVersion + 1
	cfg := s.lay.Config()
	var updated []int
	for l := 0; l <= cfg.Shape.H; l++ {
		counter := 0
		for _, pos := range s.lay.Level(l) {
			if cerr := ctx.Err(); cerr != nil {
				// Cancelled mid-quorum: abort without committing.
				s.rollbackFR(id, updated, newVersion, oldVersion, old)
				return &OpError{Op: "write", Stripe: id, Block: -1, Level: l, Node: -1, Err: cerr}
			}
			if err := s.nodes[pos].PutChunk(ctx, frChunk(id), data, []uint64{newVersion}); err != nil {
				continue
			}
			updated = append(updated, pos)
			counter++
		}
		if counter < cfg.W[l] {
			// Roll back our own footprint: restore the old replica.
			s.rollbackFR(id, updated, newVersion, oldVersion, old)
			return fmt.Errorf("%w: level %d reached %d of %d", ErrWriteFailed, l, counter, cfg.W[l])
		}
	}
	s.metrics.Writes.Add(1)
	return nil
}

// rollbackFR restores the old replica on every position this write
// updated, on a detached context (cleanup must outlive the caller's
// context), and counts the failed attempt.
func (s *FRSystem) rollbackFR(id uint64, updated []int, newVersion, oldVersion uint64, old []byte) {
	s.metrics.FailedWrites.Add(1)
	for _, p := range updated {
		_ = s.nodes[p].CompareAndPut(context.Background(), frChunk(id), 0, newVersion, oldVersion, old)
	}
	s.metrics.Rollbacks.Add(1)
}

// readForUpdate is ReadBlock without the metrics bump, used by the
// write path's initial read.
func (s *FRSystem) readForUpdate(ctx context.Context, id uint64) ([]byte, uint64, error) {
	version, ok := s.checkVersion(ctx, id)
	if !ok {
		return nil, 0, fmt.Errorf("%w: version check failed", ErrNotReadable)
	}
	for pos := range s.nodes {
		chunk, err := s.nodes[pos].ReadChunk(ctx, frChunk(id))
		if err != nil || len(chunk.Versions) != 1 {
			continue
		}
		if chunk.Versions[0] >= version {
			return chunk.Data, chunk.Versions[0], nil
		}
	}
	return nil, 0, fmt.Errorf("%w: no replica carries version %d", ErrNotReadable, version)
}

// RepairReplica refreshes the replica at a trapezoid position from the
// freshest reachable copy (version-guarded, like the ERC repair).
func (s *FRSystem) RepairReplica(ctx context.Context, id uint64, pos int) error {
	if pos < 0 || pos >= len(s.nodes) {
		return fmt.Errorf("%w: position %d of %d", ErrBadIndex, pos, len(s.nodes))
	}
	s.mu.Lock()
	_, known := s.blocks[id]
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	var best []byte
	bestVersion := sim.NoVersion
	for p := range s.nodes {
		if p == pos {
			continue
		}
		chunk, err := s.nodes[p].ReadChunk(ctx, frChunk(id))
		if err != nil || len(chunk.Versions) != 1 {
			continue
		}
		if bestVersion == sim.NoVersion || chunk.Versions[0] > bestVersion {
			bestVersion = chunk.Versions[0]
			best = chunk.Data
		}
	}
	if best == nil {
		return fmt.Errorf("%w: no surviving replica", ErrNotReadable)
	}
	if err := s.nodes[pos].PutChunkIfFresher(ctx, frChunk(id), best, []uint64{bestVersion}); err != nil {
		return err
	}
	s.metrics.Repairs.Add(1)
	return nil
}
