package core

import (
	"errors"
	"fmt"

	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
)

// appliedUpdate records one successful node update of an in-flight
// write, so a failed write can undo its own footprint.
type appliedUpdate struct {
	shard int
	// isData marks the data-node full write (undo: restore old chunk);
	// parity updates undo by re-adding the same delta (XOR is its own
	// inverse) while rolling the version back.
	isData     bool
	oldData    []byte
	oldVersion uint64
	newVersion uint64
	delta      []byte
}

// WriteBlock implements Algorithm 1: write value x into data block
// `block` of a stripe.
//
// The protocol first performs a full read of the block (line 15) to
// learn the current version and content, computes the parity delta
// α_{j,i}·(x−old), then walks levels 0..h updating nodes: the data
// node receives the new block outright, each parity node receives the
// delta conditionally on its version matching the version just read.
// A level that cannot reach w_l successful updates fails the write
// (lines 35–37).
//
// On failure this implementation rolls back the updates it applied
// (best-effort; disabled by Options.DisableRollback for the faithful
// paper behaviour).
func (s *System) WriteBlock(stripe uint64, block int, x []byte) error {
	if block < 0 || block >= s.code.K() {
		return fmt.Errorf("%w: %d of k=%d", ErrBadIndex, block, s.code.K())
	}
	size, err := s.stripeBlockSize(stripe)
	if err != nil {
		return err
	}
	if len(x) != size {
		return fmt.Errorf("%w: got %d bytes, stripe uses %d", ErrBlockSize, len(x), size)
	}
	lock := s.blockLock(stripe, block)
	lock.Lock()
	defer lock.Unlock()

	// Algorithm 1 line 15: read the old value and version.
	old, oldVersion, err := s.readBlock(stripe, block)
	if err != nil {
		s.metrics.FailedWrites.Add(1)
		return fmt.Errorf("%w: initial read failed: %v", ErrWriteFailed, err)
	}
	newVersion := oldVersion + 1
	delta := erasure.DataDelta(old, x)

	var applied []appliedUpdate
	cfg := s.lay.Config()
	for l := 0; l <= cfg.Shape.H; l++ {
		counter := 0
		for _, pos := range s.lay.Level(l) {
			shard := s.shardForPosition(block, pos)
			id := chunkID(stripe, shard)
			if pos == 0 {
				// Line 20: write x into the data node N_i. The write
				// is unconditional (the per-block lock serialises
				// writers), which also heals a stale or residue-
				// poisoned data chunk.
				if err := s.nodes[shard].PutChunk(id, x, []uint64{newVersion}); err != nil {
					continue
				}
				applied = append(applied, appliedUpdate{
					shard: shard, isData: true,
					oldData: old, oldVersion: oldVersion, newVersion: newVersion,
				})
				counter++
				continue
			}
			// Lines 25–31: conditional delta add on the parity node.
			// CompareAndAdd folds the paper's separate version check
			// and add into one atomic node operation.
			adj := s.code.ParityAdjustment(shard, block, delta)
			err := s.nodes[shard].CompareAndAdd(id, s.versionSlot(block, shard), oldVersion, newVersion, adj)
			if err != nil {
				continue // down, missing, or version mismatch: skip
			}
			applied = append(applied, appliedUpdate{
				shard: shard, oldVersion: oldVersion, newVersion: newVersion, delta: adj,
			})
			counter++
		}
		if counter < cfg.W[l] {
			// Lines 35–37: FAIL.
			s.metrics.FailedWrites.Add(1)
			if !s.opts.DisableRollback {
				s.rollback(stripe, block, applied)
			}
			return fmt.Errorf("%w: level %d reached %d of %d", ErrWriteFailed, l, counter, cfg.W[l])
		}
	}
	s.metrics.Writes.Add(1)
	return nil
}

// rollback undoes the footprint of a failed write, best-effort: nodes
// that crashed since their update keep the residue (the hazard the
// test suite demonstrates with rollback disabled).
func (s *System) rollback(stripe uint64, block int, applied []appliedUpdate) {
	for _, u := range applied {
		id := chunkID(stripe, u.shard)
		if u.isData {
			// Restore the old content conditionally on our own
			// version still being in place.
			err := s.nodes[u.shard].CompareAndPut(id, 0, u.newVersion, u.oldVersion, u.oldData)
			if err != nil && !errors.Is(err, sim.ErrVersionMismatch) {
				continue
			}
		} else {
			// XOR is self-inverse: adding the same delta again while
			// stepping the version back restores the parity chunk.
			_ = s.nodes[u.shard].CompareAndAdd(id, s.versionSlot(block, u.shard), u.newVersion, u.oldVersion, u.delta)
		}
	}
	s.metrics.Rollbacks.Add(1)
}
