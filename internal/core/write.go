package core

import (
	"context"
	"errors"
	"fmt"

	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
)

// appliedUpdate records one successful node update of an in-flight
// write, so a failed write can undo its own footprint.
type appliedUpdate struct {
	shard int
	// isData marks the data-node full write (undo: restore old chunk);
	// parity updates undo by re-adding the same delta (XOR is its own
	// inverse) while rolling the version back.
	isData     bool
	oldData    []byte
	oldVersion uint64
	newVersion uint64
	delta      []byte
}

// WriteBlock implements Algorithm 1: write value x into data block
// `block` of a stripe.
//
// The protocol first performs a full read of the block (line 15) to
// learn the current version and content, computes the parity delta
// α_{j,i}·(x−old), then walks levels 0..h updating nodes: the data
// node receives the new block outright, each parity node receives the
// delta conditionally on its version matching the version just read.
// A level that cannot reach w_l successful updates fails the write
// (lines 35–37).
//
// On failure this implementation rolls back the updates it applied
// (best-effort; disabled by Options.DisableRollback for the faithful
// paper behaviour). A context cancelled or expired mid-quorum aborts
// the write the same way — the partial footprint is rolled back and
// nothing commits — and the returned OpError wraps the context's
// error.
func (s *System) WriteBlock(ctx context.Context, stripe uint64, block int, x []byte) error {
	if block < 0 || block >= s.code.K() {
		return fmt.Errorf("%w: %d of k=%d", ErrBadIndex, block, s.code.K())
	}
	size, err := s.stripeBlockSize(stripe)
	if err != nil {
		return err
	}
	if len(x) != size {
		return fmt.Errorf("%w: got %d bytes, stripe uses %d", ErrBlockSize, len(x), size)
	}
	if err := ctx.Err(); err != nil {
		// Counted like every other aborted write attempt, so the
		// failed-write counter is consistent across abort points.
		s.metrics.FailedWrites.Add(1)
		return &OpError{Op: "write", Stripe: stripe, Block: block, Level: -1, Node: -1, Err: err}
	}
	lock := s.blockLock(stripe, block)
	lock.Lock()
	defer lock.Unlock()

	// Re-validate under the lock: if ForgetStripe ran between the
	// size check and the lock fetch, this lock is a fresh mutex that
	// no longer serialises against earlier writers — the stripe is
	// gone, so the write must not proceed.
	if _, err := s.stripeBlockSize(stripe); err != nil {
		s.metrics.FailedWrites.Add(1)
		return err
	}

	// Algorithm 1 line 15: read the old value and version.
	old, oldVersion, err := s.readBlock(ctx, stripe, block)
	if err != nil {
		s.metrics.FailedWrites.Add(1)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return &OpError{Op: "write", Stripe: stripe, Block: block, Level: -1, Node: -1, Err: ctxErr}
		}
		return &OpError{Op: "write", Stripe: stripe, Block: block, Level: -1, Node: -1,
			Err: fmt.Errorf("%w: initial read failed: %v", ErrWriteFailed, err)}
	}
	newVersion := oldVersion + 1
	delta := erasure.DataDelta(old, x)

	var applied []appliedUpdate
	cfg := s.lay.Config()
	for l := 0; l <= cfg.Shape.H; l++ {
		counter := 0
		for _, pos := range s.lay.Level(l) {
			if err := ctx.Err(); err != nil {
				// Cancelled mid-quorum: abort without committing.
				s.metrics.FailedWrites.Add(1)
				if !s.opts.DisableRollback {
					s.rollback(stripe, block, applied)
				}
				return &OpError{Op: "write", Stripe: stripe, Block: block, Level: l, Node: -1, Err: err}
			}
			shard := s.shardForPosition(block, pos)
			id := chunkID(stripe, shard)
			if pos == 0 {
				// Line 20: write x into the data node N_i. The write
				// is unconditional (the per-block lock serialises
				// writers), which also heals a stale or residue-
				// poisoned data chunk.
				if err := s.nodes[shard].PutChunk(ctx, id, x, []uint64{newVersion}); err != nil {
					continue
				}
				applied = append(applied, appliedUpdate{
					shard: shard, isData: true,
					oldData: old, oldVersion: oldVersion, newVersion: newVersion,
				})
				counter++
				continue
			}
			// Lines 25–31: conditional delta add on the parity node.
			// CompareAndAdd folds the paper's separate version check
			// and add into one atomic node operation.
			adj := s.code.ParityAdjustment(shard, block, delta)
			err := s.nodes[shard].CompareAndAdd(ctx, id, s.versionSlot(block, shard), oldVersion, newVersion, adj)
			if err != nil {
				continue // down, missing, or version mismatch: skip
			}
			applied = append(applied, appliedUpdate{
				shard: shard, oldVersion: oldVersion, newVersion: newVersion, delta: adj,
			})
			counter++
		}
		if counter < cfg.W[l] {
			// Lines 35–37: FAIL.
			s.metrics.FailedWrites.Add(1)
			if !s.opts.DisableRollback {
				s.rollback(stripe, block, applied)
			}
			cause := fmt.Errorf("%w: level %d reached %d of %d", ErrWriteFailed, l, counter, cfg.W[l])
			if ctxErr := ctx.Err(); ctxErr != nil {
				cause = ctxErr
			}
			return &OpError{Op: "write", Stripe: stripe, Block: block, Level: l, Node: -1, Err: cause}
		}
	}
	s.metrics.Writes.Add(1)
	return nil
}

// rollback undoes the footprint of a failed write, best-effort: nodes
// that crashed since their update keep the residue (the hazard the
// test suite demonstrates with rollback disabled). It runs on a
// detached context — the cleanup must proceed even when the write was
// aborted by the caller's context.
func (s *System) rollback(stripe uint64, block int, applied []appliedUpdate) {
	ctx := context.Background()
	for _, u := range applied {
		id := chunkID(stripe, u.shard)
		if u.isData {
			// Restore the old content conditionally on our own
			// version still being in place.
			err := s.nodes[u.shard].CompareAndPut(ctx, id, 0, u.newVersion, u.oldVersion, u.oldData)
			if err != nil && !errors.Is(err, sim.ErrVersionMismatch) {
				continue
			}
		} else {
			// XOR is self-inverse: adding the same delta again while
			// stepping the version back restores the parity chunk.
			_ = s.nodes[u.shard].CompareAndAdd(ctx, id, s.versionSlot(block, u.shard), u.newVersion, u.oldVersion, u.delta)
		}
	}
	s.metrics.Rollbacks.Add(1)
}
