package core

import (
	"context"
	"errors"
	"fmt"

	"trapquorum/client"
	"trapquorum/internal/blockpool"
	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
)

// appliedUpdate records one successful node update of an in-flight
// write, so a failed write can undo its own footprint.
type appliedUpdate struct {
	shard int
	// isData marks the data-node full write (undo: restore old chunk);
	// parity updates undo by re-adding the same delta (XOR is its own
	// inverse) while rolling the version back.
	isData     bool
	oldData    []byte
	oldVersion uint64
	newVersion uint64
	delta      []byte
	// adjBlk is the pooled buffer backing delta; released by the write
	// once the update can no longer be rolled back (success, or after
	// the rollback fan-out settled).
	adjBlk *blockpool.Block
}

// WriteBlock implements Algorithm 1: write value x into data block
// `block` of a stripe.
//
// The protocol first performs a full read of the block (line 15) to
// learn the current version and content, computes the parity delta
// α_{j,i}·(x−old), then updates the trapezoid nodes — the data node
// receives the new block outright, each parity node receives the delta
// conditionally on its version matching the version just read. Every
// node update, across all levels, is issued in parallel through the
// dispatch engine, so write latency tracks the slowest individual node
// RPC instead of the sum over the quorum. A level that cannot reach
// w_l successful updates fails the write (lines 35–37); the failure is
// detected as soon as enough of the level's RPCs have settled to rule
// the threshold out, and the remaining in-flight updates are
// cancelled. The fan-out waits for every issued RPC to settle before
// deciding, so the rollback bookkeeping sees exactly the updates that
// took effect (the client contract guarantees an RPC settling with a
// context error left its node unchanged).
//
// On failure this implementation rolls back the updates it applied
// (best-effort; disabled by Options.DisableRollback for the faithful
// paper behaviour). A context cancelled or expired mid-quorum aborts
// the write the same way — the partial footprint is rolled back and
// nothing commits — and the returned OpError wraps the context's
// error.
func (s *System) WriteBlock(ctx context.Context, stripe uint64, block int, x []byte) error {
	if block < 0 || block >= s.code.K() {
		return fmt.Errorf("%w: %d of k=%d", ErrBadIndex, block, s.code.K())
	}
	size, err := s.stripeBlockSize(stripe)
	if err != nil {
		return err
	}
	if len(x) != size {
		return fmt.Errorf("%w: got %d bytes, stripe uses %d", ErrBlockSize, len(x), size)
	}
	if err := ctx.Err(); err != nil {
		// Counted like every other aborted write attempt, so the
		// failed-write counter is consistent across abort points.
		s.metrics.FailedWrites.Add(1)
		return &OpError{Op: "write", Stripe: stripe, Block: block, Level: -1, Node: -1, Err: err}
	}
	lock := s.blockLock(stripe, block)
	lock.Lock()
	defer lock.Unlock()

	// Re-validate under the lock: if ForgetStripe ran between the
	// size check and the lock fetch, this lock is a fresh mutex that
	// no longer serialises against earlier writers — the stripe is
	// gone, so the write must not proceed.
	if _, err := s.stripeBlockSize(stripe); err != nil {
		s.metrics.FailedWrites.Add(1)
		return err
	}

	// Algorithm 1 line 15: read the old value and version.
	old, oldVersion, err := s.readBlock(ctx, stripe, block)
	if err != nil {
		s.metrics.FailedWrites.Add(1)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return &OpError{Op: "write", Stripe: stripe, Block: block, Level: -1, Node: -1, Err: ctxErr}
		}
		return &OpError{Op: "write", Stripe: stripe, Block: block, Level: -1, Node: -1,
			Err: fmt.Errorf("%w: initial read failed: %v", ErrWriteFailed, err)}
	}
	newVersion := oldVersion + 1
	// The writer is the one party that knows the new content before it
	// is sharded: it distributes the content hash to every node it
	// touches, so readers can later verify the data node's bytes against
	// the parity nodes' independent records (cross-checksum, DESIGN.md §6).
	newSum := client.BlockSum{Version: newVersion, Sum: erasure.Sum64(x)}
	oldSum := client.BlockSum{Version: oldVersion, Sum: erasure.Sum64(old)}
	// The delta x−old and the per-parity adjustments α·delta live in
	// pooled buffers: the transports snapshot what they send (client
	// contract), so a healthy write allocates no blocks of its own.
	deltaBlk := blockpool.GetBlock(size)
	defer deltaBlk.Release()
	delta := deltaBlk.B
	erasure.DataDeltaInto(delta, old, x)

	// One update task per trapezoid position, all levels at once.
	cfg := s.lay.Config()
	type task struct {
		level int
		pos   int
		shard int
	}
	var tasks []task
	type levelState struct {
		need    int
		total   int
		ok      int
		settled int
	}
	levels := make([]levelState, cfg.Shape.H+1)
	for l := 0; l <= cfg.Shape.H; l++ {
		positions := s.lay.Level(l)
		levels[l] = levelState{need: cfg.W[l], total: len(positions)}
		for _, pos := range positions {
			tasks = append(tasks, task{level: l, pos: pos, shard: s.shardForPosition(block, pos)})
		}
	}
	var applied []appliedUpdate
	failLevel := -1
	issue := func(cctx context.Context, t task) (appliedUpdate, error) {
		id := chunkID(stripe, t.shard)
		if t.pos == 0 {
			// Line 20: write x into the data node N_i. The write is
			// unconditional (the per-block lock serialises writers),
			// which also heals a stale or residue-poisoned data chunk.
			if err := s.nodes[t.shard].PutChunk(cctx, id, x, []uint64{newVersion}, newSum); err != nil {
				return appliedUpdate{}, err
			}
			return appliedUpdate{
				shard: t.shard, isData: true,
				oldData: old, oldVersion: oldVersion, newVersion: newVersion,
			}, nil
		}
		// Lines 25–31: conditional delta add on the parity node.
		// CompareAndAdd folds the paper's separate version check and
		// add into one atomic node operation. The Galois adjustment is
		// computed here, inside the worker, so the per-parity GF(256)
		// multiplies run in parallel too — into a pooled buffer that is
		// kept alive while a rollback might need to re-send it.
		adjBlk := blockpool.GetBlock(size)
		s.code.ParityAdjustmentInto(adjBlk.B, t.shard, block, delta)
		if err := s.nodes[t.shard].CompareAndAdd(cctx, id, s.versionSlot(block, t.shard), oldVersion, newVersion, adjBlk.B, newSum); err != nil {
			adjBlk.Release()
			return appliedUpdate{}, err
		}
		return appliedUpdate{
			shard: t.shard, oldVersion: oldVersion, newVersion: newVersion, delta: adjBlk.B, adjBlk: adjBlk,
		}, nil
	}
	// runUpdates fans a task subset out and accounts per level. With
	// failFast it records failLevel as soon as some level provably
	// cannot reach w_l, which also cancels the subset's outstanding
	// updates; without it every update of the subset runs to its own
	// conclusion and the caller evaluates the threshold afterwards.
	runUpdates := func(subset []task, failFast bool) {
		Fanout(ctx, s.opLimit(), len(subset), func(cctx context.Context, i int) (appliedUpdate, error) {
			return issue(cctx, subset[i])
		}, func(i int, upd appliedUpdate, err error) bool {
			// Track every settled update, even ones landing after a
			// failure decision: rollback must know the full footprint.
			lv := &levels[subset[i].level]
			lv.settled++
			if err == nil {
				applied = append(applied, upd)
				lv.ok++
				return true
			}
			// Down, missing, version mismatch, or cancelled: the node
			// did not apply. Fail fast once the level cannot reach w_l.
			if failFast && failLevel < 0 && lv.ok+(lv.total-lv.settled) < lv.need {
				failLevel = subset[i].level
				return false
			}
			return true
		})
	}
	if s.opts.DisableRollback {
		// Paper-faithful mode: Algorithm 1 walks levels 0..h in order,
		// attempts the update on *every* node of a level, and FAILs at
		// the first level missing w_l — never touching the levels
		// above it. That exact residue footprint is what the ablation
		// studies measure, so this mode keeps the level walk (parallel
		// within each level, no early cancellation): an all-levels
		// fan-out or a mid-level abort would strew residue across
		// nodes the published algorithm never reached, or skip nodes
		// it did reach.
		for start := 0; start < len(tasks) && failLevel < 0; {
			end := start
			for end < len(tasks) && tasks[end].level == tasks[start].level {
				end++
			}
			runUpdates(tasks[start:end], false)
			if l := tasks[start].level; levels[l].ok < levels[l].need {
				failLevel = l
			}
			start = end
		}
	} else {
		runUpdates(tasks, true)
	}
	// releaseAdjustments returns the pooled adjustment buffers once no
	// rollback can reference them any more. The fan-out (and, on
	// failure, the rollback fan-out) has fully settled by the time it
	// runs, and the transports snapshot outgoing buffers, so nothing
	// aliases them past this point.
	releaseAdjustments := func() {
		for i := range applied {
			applied[i].adjBlk.Release()
			applied[i].adjBlk = nil
			applied[i].delta = nil
		}
	}
	if failLevel >= 0 {
		// Lines 35–37: FAIL.
		s.metrics.FailedWrites.Add(1)
		if !s.opts.DisableRollback {
			s.rollback(stripe, block, applied, oldSum)
		}
		releaseAdjustments()
		cause := fmt.Errorf("%w: level %d reached %d of %d", ErrWriteFailed, failLevel, levels[failLevel].ok, levels[failLevel].need)
		if ctxErr := ctx.Err(); ctxErr != nil {
			cause = ctxErr
		}
		return &OpError{Op: "write", Stripe: stripe, Block: block, Level: failLevel, Node: -1, Err: cause}
	}
	s.metrics.Writes.Add(1)
	releaseAdjustments()
	return nil
}

// rollback undoes the footprint of a failed write, best-effort: nodes
// that crashed since their update keep the residue (the hazard the
// test suite demonstrates with rollback disabled). The undo RPCs are
// issued in parallel and run on a detached context — the cleanup must
// proceed even when the write was aborted by the caller's context.
// The undo also restores the cross-checksum record entry for the old
// version — the failed write overwrote each touched node's opinion
// with the new content's hash, and without the restore a later read at
// the old version would find no opinions to verify against.
func (s *System) rollback(stripe uint64, block int, applied []appliedUpdate, oldSum client.BlockSum) {
	ctx := context.Background()
	Fanout(ctx, s.opLimit(), len(applied), func(_ context.Context, i int) (struct{}, error) {
		u := applied[i]
		id := chunkID(stripe, u.shard)
		if u.isData {
			// Restore the old content conditionally on our own
			// version still being in place.
			err := s.nodes[u.shard].CompareAndPut(ctx, id, 0, u.newVersion, u.oldVersion, u.oldData, oldSum)
			if err != nil && !errors.Is(err, sim.ErrVersionMismatch) {
				return struct{}{}, err
			}
			return struct{}{}, nil
		}
		// XOR is self-inverse: adding the same delta again while
		// stepping the version back restores the parity chunk.
		_ = s.nodes[u.shard].CompareAndAdd(ctx, id, s.versionSlot(block, u.shard), u.newVersion, u.oldVersion, u.delta, oldSum)
		return struct{}{}, nil
	}, func(int, struct{}, error) bool { return true })
	s.metrics.Rollbacks.Add(1)
}
