package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"trapquorum/internal/sim"
)

func TestRepairShardAfterWipe(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	// Snapshot every chunk before the failure.
	before := make([]sim.Chunk, ts.code.N())
	for j := range before {
		chunk, err := ts.shardNode(j).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: j})
		if err != nil {
			t.Fatal(err)
		}
		before[j] = chunk
	}
	for _, victim := range []int{0, 5, 8, 14} { // data and parity shards
		ts.cluster.Crash(victim)
		ts.cluster.Restart(victim)
		if err := ts.shardNode(victim).Wipe(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := ts.sys.RepairShard(context.Background(), 1, victim); err != nil {
			t.Fatalf("repair %d: %v", victim, err)
		}
		after, err := ts.shardNode(victim).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: victim})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(after.Data, before[victim].Data) {
			t.Fatalf("shard %d: repaired content differs", victim)
		}
		if len(after.Versions) != len(before[victim].Versions) {
			t.Fatalf("shard %d: version vector shape changed", victim)
		}
		for s, v := range before[victim].Versions {
			if after.Versions[s] != v {
				t.Fatalf("shard %d: version slot %d = %d, want %d", victim, s, after.Versions[s], v)
			}
		}
	}
}

func TestRepairPicksUpLaterWrites(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 64)
	// Node 10 (parity) dies; the system keeps accepting writes.
	ts.cluster.Crash(10)
	r := rand.New(rand.NewSource(4))
	want := make([][]byte, ts.code.K())
	for i := 0; i < ts.code.K(); i++ {
		x := make([]byte, 64)
		r.Read(x)
		if err := ts.sys.WriteBlock(context.Background(), 1, i, x); err != nil {
			t.Fatal(err)
		}
		want[i] = x
	}
	// Node returns with an empty disk and gets repaired.
	ts.cluster.Restart(10)
	if err := ts.shardNode(10).Wipe(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ts.sys.RepairShard(context.Background(), 1, 10); err != nil {
		t.Fatal(err)
	}
	// The repaired parity must carry version 2 for every block and be
	// code-consistent with the current data.
	chunk, err := ts.shardNode(10).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: 10})
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range chunk.Versions {
		if v != 2 {
			t.Fatalf("slot %d version = %d, want 2", s, v)
		}
	}
	shards := make([][]byte, ts.code.N())
	for j := range shards {
		c, err := ts.shardNode(j).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: j})
		if err != nil {
			t.Fatal(err)
		}
		shards[j] = c.Data
	}
	ok, err := ts.code.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("repaired stripe violates the code")
	}
	// And the repaired node participates in future writes: no more
	// version rejects on it.
	if err := ts.sys.WriteBlock(context.Background(), 1, 0, want[0]); err != nil {
		t.Fatal(err)
	}
}

func TestRepairNodeAcrossStripes(t *testing.T) {
	ts := fig3System(t, Options{})
	for stripe := uint64(1); stripe <= 4; stripe++ {
		ts.seed(t, stripe, 32)
	}
	ts.cluster.Crash(9)
	ts.cluster.Restart(9)
	if err := ts.shardNode(9).Wipe(context.Background()); err != nil {
		t.Fatal(err)
	}
	repaired, err := ts.sys.RepairNode(context.Background(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 4 {
		t.Fatalf("repaired %d stripes, want 4", repaired)
	}
	for stripe := uint64(1); stripe <= 4; stripe++ {
		if ok, _ := ts.shardNode(9).HasChunk(context.Background(), sim.ChunkID{Stripe: stripe, Shard: 9}); !ok {
			t.Fatalf("stripe %d not repaired", stripe)
		}
	}
	if m := ts.sys.Metrics(); m.Repairs != 4 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRepairValidation(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 32)
	if err := ts.sys.RepairShard(context.Background(), 1, 15); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("err = %v", err)
	}
	if err := ts.sys.RepairShard(context.Background(), 9, 0); !errors.Is(err, ErrUnknownStripe) {
		t.Fatalf("err = %v", err)
	}
}

func TestRepairFailsWithTooFewSurvivors(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 32)
	// Leave only k-1 = 7 nodes up besides the repair target.
	for _, j := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		ts.cluster.Crash(j)
	}
	if err := ts.sys.RepairShard(context.Background(), 1, 14); !errors.Is(err, ErrNotReadable) {
		t.Fatalf("err = %v", err)
	}
}

func TestRepairTargetNodeMustBeUp(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 32)
	ts.cluster.Crash(11)
	if err := ts.sys.RepairShard(context.Background(), 1, 11); err == nil {
		t.Fatal("repair onto a down node succeeded")
	}
}

func TestRepairNodePartialFailure(t *testing.T) {
	ts := fig3System(t, Options{})
	ts.seed(t, 1, 32)
	ts.seed(t, 2, 32)
	// Stripe 2 becomes unrecoverable: crash 8 source nodes.
	// Stripe 1 stays healthy. RepairNode(14) must repair stripe 1 and
	// report the stripe-2 failure.
	ts.cluster.Crash(14)
	ts.cluster.Restart(14)
	if err := ts.shardNode(14).Wipe(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Make only stripe 2 unrecoverable by deleting its chunks from 8
	// source nodes (nodes stay up so stripe 1 is unaffected): the six
	// surviving parity chunks are fewer than k = 8.
	for _, j := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		if err := ts.shardNode(j).DeleteChunk(context.Background(), sim.ChunkID{Stripe: 2, Shard: j}); err != nil {
			t.Fatal(err)
		}
	}
	repaired, err := ts.sys.RepairNode(context.Background(), 14)
	if err == nil {
		t.Fatal("expected an error for the unrecoverable stripe")
	}
	if repaired != 1 {
		t.Fatalf("repaired = %d, want 1 (stripe 1 only)", repaired)
	}
}
