package core

import (
	"context"
	"fmt"
	"sort"

	"trapquorum/internal/sim"
)

// ReadBlock implements Algorithm 2: read data block `block` of a
// stripe. It returns the block content and the version it carries.
//
// Step 1 (checking version): levels are scanned from 0 to h; at each
// level the version of the block is collected from responding nodes
// until r_l = s_l−w_l+1 answers arrive. The first level to do so
// determines the latest version.
//
// Step 2 (read or decode): if the data node N_i holds the latest
// version the block is read from it directly (Case 1); otherwise the
// block is decoded from k mutually consistent shards carrying the
// latest version (Case 2).
//
// A cancelled or expired context aborts the read; the returned OpError
// wraps the context's error.
func (s *System) ReadBlock(ctx context.Context, stripe uint64, block int) ([]byte, uint64, error) {
	if block < 0 || block >= s.code.K() {
		return nil, 0, fmt.Errorf("%w: %d of k=%d", ErrBadIndex, block, s.code.K())
	}
	if _, err := s.stripeBlockSize(stripe); err != nil {
		return nil, 0, err
	}
	data, version, err := s.readBlock(ctx, stripe, block)
	if err != nil {
		s.metrics.FailedReads.Add(1)
		return nil, 0, err
	}
	return data, version, nil
}

// readRetryLimit bounds how often a read chases a version that
// concurrent writes moved past mid-flight.
const readRetryLimit = 4

// readBlock is ReadBlock without metrics/validation, shared with the
// write path's initial read.
//
// The decode path can race concurrent writers: the check quorum pins
// "latest = v", but by the time the shards are gathered every parity
// has moved to v+1 and no consistent set at v exists any more. That
// is not a failure of the stripe — re-running the version check
// observes the newer version and succeeds. The retry is bounded; a
// stripe under relentless write pressure can still report
// ErrNotReadable, which callers treat like any other transient quorum
// failure.
func (s *System) readBlock(ctx context.Context, stripe uint64, block int) ([]byte, uint64, error) {
	// wrap keeps every failure of this read behind one OpError, so
	// errors.As works uniformly across the version-check, decode and
	// cancellation paths.
	wrap := func(err error) error {
		return &OpError{Op: "read", Stripe: stripe, Block: block, Level: -1, Node: -1, Err: err}
	}
	lastVersion := sim.NoVersion
	var lastErr error
	for attempt := 0; attempt < readRetryLimit; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, wrap(err)
		}
		version, niVersion, niResponded, ok := s.checkVersion(ctx, stripe, block)
		if !ok {
			if err := ctx.Err(); err != nil {
				return nil, 0, wrap(err)
			}
			return nil, 0, wrap(fmt.Errorf("%w: no level reached its version check threshold", ErrNotReadable))
		}
		if attempt > 0 && version == lastVersion {
			// No concurrent progress: the previous decode failure was
			// a genuine availability gap, not a race.
			if cerr := ctx.Err(); cerr != nil {
				return nil, 0, wrap(cerr)
			}
			return nil, 0, wrap(lastErr)
		}
		lastVersion = version
		// Case 1: the data node holds the latest version — read directly.
		if niResponded && niVersion == version {
			chunk, err := s.nodes[block].ReadChunk(ctx, chunkID(stripe, block))
			if err == nil && len(chunk.Versions) > 0 && chunk.Versions[0] >= version {
				s.metrics.DirectReads.Add(1)
				return chunk.Data, chunk.Versions[0], nil
			}
			// The node failed between the version check and the read;
			// fall through to the decode path.
		}
		// Case 2: decode from k consistent shards at the latest version.
		data, err := s.decodeBlock(ctx, stripe, block, version)
		if err == nil {
			s.metrics.DecodeReads.Add(1)
			return data, version, nil
		}
		lastErr = err
	}
	if cerr := ctx.Err(); cerr != nil {
		// The shards stopped answering because the context died, not
		// because the stripe degraded.
		return nil, 0, wrap(cerr)
	}
	return nil, 0, wrap(lastErr)
}

// checkVersion performs Step 1 of Algorithm 2. It returns the latest
// version found by the first level that reached its threshold, the
// data node's own version (valid when niResponded), and ok=false when
// every level failed.
func (s *System) checkVersion(ctx context.Context, stripe uint64, block int) (version, niVersion uint64, niResponded, ok bool) {
	cfg := s.lay.Config()
	for l := 0; l <= cfg.Shape.H; l++ {
		need := cfg.ReadThreshold(l)
		counter := 0
		version = sim.NoVersion
		for _, pos := range s.lay.Level(l) {
			shard := s.shardForPosition(block, pos)
			versions, err := s.nodes[shard].ReadVersions(ctx, chunkID(stripe, shard))
			if err != nil {
				continue // down or missing: does not count
			}
			v, valid := s.versionOfShard(block, shard, versions)
			if !valid {
				continue
			}
			if pos == 0 {
				niVersion = v
				niResponded = true
			}
			if version == sim.NoVersion || v > version {
				version = v
			}
			counter++
			if counter == need {
				return version, niVersion, niResponded, true
			}
		}
	}
	return 0, 0, false, false
}

// shardCandidate is one shard available for decoding: its stripe
// index, content, and full version vector.
type shardCandidate struct {
	shard    int
	data     []byte
	versions []uint64
}

// decodeBlock implements Case 2 of Algorithm 2: reconstruct data block
// `block` at the target version from any k mutually consistent shards.
//
// Consistency is judged on full version vectors, the information the
// paper's V matrix carries: two parity shards agree iff their vectors
// are identical; a data shard t agrees with a parity vector iff its
// own version equals the vector's component t. This prevents mixing
// shards that fold different versions of *other* blocks, which would
// decode garbage.
func (s *System) decodeBlock(ctx context.Context, stripe uint64, block int, version uint64) ([]byte, error) {
	k := s.code.K()
	n := s.code.N()
	// Collect candidates from every reachable node.
	var parity []shardCandidate
	dataVersion := make(map[int]shardCandidate)
	for shard := 0; shard < n; shard++ {
		chunk, err := s.nodes[shard].ReadChunk(ctx, chunkID(stripe, shard))
		if err != nil {
			continue
		}
		cand := shardCandidate{shard: shard, data: chunk.Data, versions: chunk.Versions}
		if shard < k {
			if len(chunk.Versions) == 1 {
				dataVersion[shard] = cand
			}
		} else if len(chunk.Versions) == k {
			parity = append(parity, cand)
		}
	}
	// Group parity shards by identical version vectors whose component
	// for `block` equals the target version.
	type group struct {
		vector  []uint64
		members []shardCandidate
	}
	groups := make(map[string]*group)
	for _, cand := range parity {
		if cand.versions[block] != version {
			continue
		}
		key := vectorKey(cand.versions)
		g, ok := groups[key]
		if !ok {
			g = &group{vector: cand.versions}
			groups[key] = g
		}
		g.members = append(g.members, cand)
	}
	// The all-data group: if the data shard for `block` itself is at
	// the target version we never get here (Case 1 handles it), so a
	// viable decode set always includes at least one parity shard.
	var keys []string
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys) // deterministic choice among viable groups
	var best []shardCandidate
	for _, key := range keys {
		g := groups[key]
		members := append([]shardCandidate(nil), g.members...)
		// Extend with data shards consistent with the group vector.
		for t := 0; t < k; t++ {
			if t == block {
				continue // target block's own shard is stale here
			}
			cand, ok := dataVersion[t]
			if !ok || cand.versions[0] != g.vector[t] {
				continue
			}
			members = append(members, cand)
		}
		if len(members) >= k && len(best) < len(members) {
			best = members
		}
	}
	if len(best) < k {
		return nil, fmt.Errorf("%w: no %d consistent shards at version %d", ErrNotReadable, k, version)
	}
	shards := make([][]byte, n)
	for _, cand := range best {
		shards[cand.shard] = cand.data
	}
	return s.code.DecodeBlock(block, shards)
}

// vectorKey renders a version vector as a map key.
func vectorKey(v []uint64) string {
	buf := make([]byte, 0, len(v)*8)
	for _, x := range v {
		for shift := 0; shift < 64; shift += 8 {
			buf = append(buf, byte(x>>uint(shift)))
		}
	}
	return string(buf)
}
