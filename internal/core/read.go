package core

import (
	"context"
	"fmt"
	"time"

	"trapquorum/client"
	"trapquorum/internal/blockpool"
	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
)

// ReadBlock implements Algorithm 2: read data block `block` of a
// stripe. It returns the block content and the version it carries.
//
// Step 1 (checking version): every level's version probes are issued
// in parallel through the dispatch engine; the first level to collect
// r_l = s_l−w_l+1 answers determines the latest version, and the
// remaining probes are cancelled ("first-quorum" early termination).
//
// Step 2 (read or decode): if the data node N_i holds the latest
// version the block is read from it directly (Case 1); otherwise the
// block is decoded from k mutually consistent shards carrying the
// latest version (Case 2), gathered in parallel and terminated as soon
// as a decodable set is in hand ("first-k").
//
// A cancelled or expired context aborts the read; the returned OpError
// wraps the context's error.
func (s *System) ReadBlock(ctx context.Context, stripe uint64, block int) ([]byte, uint64, error) {
	if block < 0 || block >= s.code.K() {
		return nil, 0, fmt.Errorf("%w: %d of k=%d", ErrBadIndex, block, s.code.K())
	}
	if _, err := s.stripeBlockSize(stripe); err != nil {
		return nil, 0, err
	}
	data, version, err := s.readBlock(ctx, stripe, block)
	if err != nil {
		s.metrics.FailedReads.Add(1)
		return nil, 0, err
	}
	return data, version, nil
}

// readRetryLimit bounds how often a read chases a version that
// concurrent writes moved past mid-flight.
const readRetryLimit = 4

// dataNodeState classifies what the version check learned about the
// data node N_i relative to the winning version.
type dataNodeState int

const (
	// dataNodeUnknown: the probe was cancelled by the early
	// termination before it settled — freshness unknown, the direct
	// read is attempted optimistically (the chunk read re-verifies).
	dataNodeUnknown dataNodeState = iota
	// dataNodeFresh: N_i answered with the winning version.
	dataNodeFresh
	// dataNodeStale: N_i answered with an older version.
	dataNodeStale
	// dataNodeFailed: N_i's probe errored (down or missing chunk).
	dataNodeFailed
)

// readBlock is ReadBlock without metrics/validation, shared with the
// write path's initial read.
//
// The decode path can race concurrent writers: the check quorum pins
// "latest = v", but by the time the shards are gathered every parity
// has moved to v+1 and no consistent set at v exists any more. That
// is not a failure of the stripe — re-running the version check
// observes the newer version and succeeds. The retry is bounded; a
// stripe under relentless write pressure can still report
// ErrNotReadable, which callers treat like any other transient quorum
// failure.
func (s *System) readBlock(ctx context.Context, stripe uint64, block int) ([]byte, uint64, error) {
	// wrap keeps every failure of this read behind one OpError, so
	// errors.As works uniformly across the version-check, decode and
	// cancellation paths.
	wrap := func(err error) error {
		return &OpError{Op: "read", Stripe: stripe, Block: block, Level: -1, Node: -1, Err: err}
	}
	lastVersion := sim.NoVersion
	var lastErr error
	for attempt := 0; attempt < readRetryLimit; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, wrap(err)
		}
		checkStart := time.Now()
		version, ni, expect, ok := s.checkVersion(ctx, stripe, block)
		quorumElapsed := time.Since(checkStart)
		if !ok {
			if err := ctx.Err(); err != nil {
				return nil, 0, wrap(err)
			}
			return nil, 0, wrap(fmt.Errorf("%w: no level reached its version check threshold", ErrNotReadable))
		}
		if attempt > 0 && version == lastVersion {
			// No concurrent progress: the previous decode failure was
			// a genuine availability gap, not a race.
			if cerr := ctx.Err(); cerr != nil {
				return nil, 0, wrap(cerr)
			}
			return nil, 0, wrap(lastErr)
		}
		lastVersion = version
		// Case 1: read directly from the data node when its probe
		// settled with (at least) the latest version — it just
		// answered the quorum promptly, so a blocking read is safe.
		if ni == dataNodeFresh {
			if !expect.known {
				// The winning quorum settled without a single parity
				// opinion (possible when a one-node level wins): gather
				// opinions explicitly before trusting the data node's
				// bytes, or a lying N_i could self-certify.
				expect = s.gatherExpected(ctx, stripe, block, version)
			}
			if data, served, ok := s.tryDirectRead(ctx, stripe, block, version, expect); ok {
				s.metrics.DirectReads.Add(1)
				return data, served, nil
			}
			// The node failed, lagged, or served bytes the record
			// majority disavows; fall through to the decode path.
		}
		// The data node's probe never settled (cancelled by the early
		// termination): attempt the direct read optimistically — the
		// chunk read re-verifies the version, so it can never serve
		// stale data — but only trust the node for a grace period
		// scaled to how fast the rest of the quorum answered; past it
		// the node is treated as a straggler and the decode path races
		// the still-pending read, so a slow data node never gates the
		// block (the first-k guarantee).
		if ni == dataNodeUnknown {
			grace := 2 * quorumElapsed
			if grace < directReadGraceFloor {
				grace = directReadGraceFloor
			}
			data, served, direct, derr := s.directOrDecode(ctx, stripe, block, version, expect, grace)
			if derr == nil {
				if direct {
					s.metrics.DirectReads.Add(1)
				} else {
					s.metrics.DecodeReads.Add(1)
				}
				return data, served, nil
			}
			lastErr = derr
			continue
		}
		// Case 2: decode from k consistent shards at the latest version.
		data, err := s.decodeBlock(ctx, stripe, block, version, expect)
		if err == nil {
			s.metrics.DecodeReads.Add(1)
			return data, version, nil
		}
		lastErr = err
	}
	if cerr := ctx.Err(); cerr != nil {
		// The shards stopped answering because the context died, not
		// because the stripe degraded.
		return nil, 0, wrap(cerr)
	}
	return nil, 0, wrap(lastErr)
}

// tryDirectRead is the Case-1 primitive shared by the fresh path and
// the optimistic race: read the block from its data node (hedged) and
// accept only a chunk carrying at least the target version. The ≥
// acceptance mirrors the sequential engine: a node ahead of the
// pinned version holds either a concurrent writer's in-flight update
// or unrepaired residue, both of which the sequential scan — which
// always counted N_i's probe into the version maximum — served the
// same way (the residue anomaly is documented and demonstrated in the
// safety tests; the paper assumes concurrency control above the
// protocol).
// When an expected content hash is known, a chunk served exactly at
// the pinned version must match it — bytes the record majority
// disavows are never returned; the read falls back to decoding from
// survivors and the culprit is reported. A chunk ahead of the pinned
// version belongs to a concurrent writer whose record quorum is still
// forming and is served as before.
func (s *System) tryDirectRead(ctx context.Context, stripe uint64, block int, version uint64, expect sumOpinion) ([]byte, uint64, bool) {
	chunk, err := hedged(ctx, s.hedge, func(hctx context.Context) (client.Chunk, error) {
		return s.nodes[block].ReadChunk(hctx, chunkID(stripe, block))
	})
	if err != nil {
		if isCorruptErr(err) {
			s.reportCorrupt(block)
		}
		return nil, 0, false
	}
	if len(chunk.Versions) == 0 || chunk.Versions[0] < version {
		return nil, 0, false
	}
	if expect.known && chunk.Versions[0] == version && erasure.Sum64(chunk.Data) != expect.sum {
		s.reportCorrupt(block)
		return nil, 0, false
	}
	return chunk.Data, chunk.Versions[0], true
}

// directReadGraceFloor is the minimum time a read with an unsettled
// data-node probe trusts the optimistic direct read before racing the
// decode path against it. Generous on purpose: on a healthy cluster
// the direct read settles orders of magnitude sooner, so the decode
// race — whose outcome depends on scheduling — practically never
// starts unless the node really is a straggler.
const directReadGraceFloor = 50 * time.Millisecond

// directOrDecode resolves Case 1 vs Case 2 of Algorithm 2 when the
// data node's freshness is unknown (its probe was cancelled by the
// version check's early termination). The direct read is issued
// immediately; if it settles within the grace period the result
// decides the case on its own (success: direct; stale or error:
// plain decode). Past the grace the node is suspected of straggling
// and the decode runs concurrently — the first usable result wins and
// the loser is cancelled. direct reports which path served the block.
func (s *System) directOrDecode(ctx context.Context, stripe uint64, block int, version uint64, expect sumOpinion, grace time.Duration) (data []byte, served uint64, direct bool, err error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type directRes struct {
		data    []byte
		version uint64
		ok      bool
	}
	directCh := make(chan directRes, 1)
	go func() {
		d, v, ok := s.tryDirectRead(cctx, stripe, block, version, expect)
		directCh <- directRes{data: d, version: v, ok: ok}
	}()
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case r := <-directCh:
		if r.ok {
			return r.data, r.version, true, nil
		}
		// The node answered promptly but stale/failed: normal decode.
		data, err = s.decodeBlock(ctx, stripe, block, version, expect)
		return data, version, false, err
	case <-timer.C:
	}
	// Straggler suspected: race the decode against the pending read.
	type decodeRes struct {
		data []byte
		err  error
	}
	decodeCh := make(chan decodeRes, 1)
	go func() {
		d, derr := s.decodeBlock(cctx, stripe, block, version, expect)
		decodeCh <- decodeRes{data: d, err: derr}
	}()
	var decodeErr error
	directDone, decodeDone := false, false
	for !directDone || !decodeDone {
		select {
		case r := <-directCh:
			directDone = true
			if r.ok {
				return r.data, r.version, true, nil
			}
		case r := <-decodeCh:
			decodeDone = true
			if r.err == nil {
				return r.data, version, false, nil
			}
			decodeErr = r.err
			// Decode failed. Under write contention this is usually
			// the pinned-version race that readBlock's retry loop
			// exists to absorb — so give the pending direct read only
			// a bounded extension (it is the last hope if the gap is
			// genuine), then return the decode error and let the
			// caller re-check the version instead of stalling behind
			// the straggler.
			timer.Reset(4 * grace)
		case <-timer.C:
			if decodeDone {
				return nil, 0, false, decodeErr
			}
		}
	}
	return nil, 0, false, decodeErr
}

// verProbe is one version-probe answer: the shard's version vector
// plus its cross-checksum record, carried together through the fan-out.
type verProbe struct {
	versions []uint64
	sums     []client.BlockSum
}

// checkVersion performs Step 1 of Algorithm 2 concurrently: one
// version probe per trapezoid position, all levels in flight at once.
// The first level to reach its read threshold wins (any level's
// threshold guarantees overlap with every committed write at that
// level, so racing the levels is sound); the winner's version is the
// maximum among its first r_l valid answers, exactly as the
// sequential scan took the max of the first r_l responders. ok=false
// means every level settled without reaching its threshold.
//
// Alongside the version, the probes' cross-checksum records are
// tallied into the expected content hash of the block at the winning
// version (parity opinions only — the data node's own record must not
// vouch for its own bytes), so Step 2 can verify what it serves.
func (s *System) checkVersion(ctx context.Context, stripe uint64, block int) (version uint64, ni dataNodeState, expect sumOpinion, ok bool) {
	cfg := s.lay.Config()
	type probe struct {
		level int
		pos   int
		shard int
	}
	var probes []probe
	type levelState struct {
		need    int
		total   int
		counted int
		settled int
		dead    bool
		version uint64
	}
	levels := make([]levelState, cfg.Shape.H+1)
	for l := 0; l <= cfg.Shape.H; l++ {
		positions := s.lay.Level(l)
		levels[l] = levelState{need: cfg.ReadThreshold(l), total: len(positions), version: sim.NoVersion}
		for _, pos := range positions {
			probes = append(probes, probe{level: l, pos: pos, shard: s.shardForPosition(block, pos)})
		}
	}
	winner := -1
	dead := 0
	var niVersion uint64
	niState := dataNodeUnknown
	recs := make([][]client.BlockSum, len(probes))
	Fanout(ctx, s.opLimit(), len(probes), func(cctx context.Context, i int) (verProbe, error) {
		return hedged(cctx, s.hedge, func(hctx context.Context) (verProbe, error) {
			vers, sums, err := s.nodes[probes[i].shard].ReadVersions(hctx, chunkID(stripe, probes[i].shard))
			return verProbe{versions: vers, sums: sums}, err
		})
	}, func(i int, pr verProbe, err error) bool {
		if err != nil && isCorruptErr(err) {
			// A quarantined or self-detected-rotten chunk surfaced on the
			// probe path: record the observation even though the probe
			// itself just reads as failed.
			s.reportCorrupt(probes[i].shard)
		}
		if winner >= 0 || dead > cfg.Shape.H {
			return true // decided; late stragglers carry no new information
		}
		p := probes[i]
		lv := &levels[p.level]
		lv.settled++
		v, valid := uint64(0), false
		if err == nil {
			v, valid = s.versionOfShard(block, p.shard, pr.versions)
		}
		if valid {
			if p.pos != 0 {
				recs[i] = pr.sums
			}
			if p.pos == 0 {
				niState = dataNodeFresh // refined against the winner below
				niVersion = v
			}
			if lv.counted == 0 || v > lv.version {
				lv.version = v
			}
			lv.counted++
			if lv.counted == lv.need {
				winner = p.level
				return false // quorum in hand: cancel the stragglers
			}
		} else {
			if p.pos == 0 {
				niState = dataNodeFailed
			}
			if !lv.dead && lv.counted+(lv.total-lv.settled) < lv.need {
				lv.dead = true
				dead++
				if dead > cfg.Shape.H {
					return false // no level can reach its threshold any more
				}
			}
		}
		return true
	})
	if winner < 0 {
		return 0, dataNodeUnknown, sumOpinion{}, false
	}
	version = levels[winner].version
	if niState == dataNodeFresh && niVersion < version {
		niState = dataNodeStale
	}
	tally := make(map[uint64]int)
	for _, rec := range recs {
		tallyOpinion(tally, rec, block, version)
	}
	return version, niState, pluralitySum(tally), true
}

// shardCandidate is one shard available for decoding: its stripe
// index, content, and full version vector.
type shardCandidate struct {
	shard    int
	data     []byte
	versions []uint64
}

// decodeGroup collects the parity shards sharing one version vector
// whose component for the target block equals the target version, plus
// the data shards consistent with that vector.
type decodeGroup struct {
	vector  []uint64
	parity  []shardCandidate
	data    map[int]shardCandidate
	matches int // parity members + consistent data shards
}

// decodeBlock implements Case 2 of Algorithm 2: reconstruct data block
// `block` at the target version from any k mutually consistent shards.
//
// Consistency is judged on full version vectors, the information the
// paper's V matrix carries: two parity shards agree iff their vectors
// are identical; a data shard t agrees with a parity vector iff its
// own version equals the vector's component t. This prevents mixing
// shards that fold different versions of *other* blocks, which would
// decode garbage.
//
// All n chunk reads are issued in parallel and grouped incrementally
// as they settle; the first group to reach k members stops the fan-out
// ("first-k"), cancelling the straggler reads. Any k mutually
// consistent shards of an MDS code decode the same bytes, so taking
// the first viable set instead of the largest changes nothing but the
// latency.
func (s *System) decodeBlock(ctx context.Context, stripe uint64, block int, version uint64, expect sumOpinion) ([]byte, error) {
	k := s.code.K()
	n := s.code.N()
	groups := make(map[string]*decodeGroup)
	dataCands := make(map[int]shardCandidate)
	decTally := make(map[uint64]int)
	var winner *decodeGroup
	// tryExtend folds one data-shard candidate into one group when the
	// shard's own version matches the group vector's component.
	tryExtend := func(g *decodeGroup, cand shardCandidate) {
		if cand.shard == block {
			return // the target block's own shard is stale here (Case 1 handles fresh)
		}
		if _, have := g.data[cand.shard]; have || cand.versions[0] != g.vector[cand.shard] {
			return
		}
		g.data[cand.shard] = cand
		g.matches++
	}
	Fanout(ctx, s.opLimit(), n, func(cctx context.Context, shard int) (client.Chunk, error) {
		return hedged(cctx, s.hedge, func(hctx context.Context) (client.Chunk, error) {
			return s.nodes[shard].ReadChunk(hctx, chunkID(stripe, shard))
		})
	}, func(shard int, chunk client.Chunk, err error) bool {
		if winner != nil {
			return true
		}
		if err != nil {
			if isCorruptErr(err) {
				s.reportCorrupt(shard)
			}
			return true
		}
		if shard >= k {
			// Collect the parity's content opinion even when the shard
			// itself is stale for decoding — the opinions judge what we
			// eventually decode, independent of which set decodes it.
			tallyOpinion(decTally, chunk.Sums, block, version)
		}
		cand := shardCandidate{shard: shard, data: chunk.Data, versions: chunk.Versions}
		switch {
		case shard < k && len(chunk.Versions) == 1:
			dataCands[shard] = cand
			for _, g := range groups {
				tryExtend(g, cand)
				if g.matches >= k {
					winner = g
					return false
				}
			}
		case shard >= k && len(chunk.Versions) == k && chunk.Versions[block] == version:
			key := vectorKey(chunk.Versions)
			g, have := groups[key]
			if !have {
				g = &decodeGroup{vector: chunk.Versions, data: make(map[int]shardCandidate)}
				groups[key] = g
				for _, cand := range dataCands {
					tryExtend(g, cand)
				}
			}
			g.parity = append(g.parity, cand)
			g.matches++
			if g.matches >= k {
				winner = g
				return false
			}
		}
		return true
	})
	if winner == nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: no %d consistent shards at version %d", ErrNotReadable, k, version)
	}
	// The n-slot shard view is pooled scratch; the decoded block itself
	// is the user-facing result and stays a plain allocation.
	sl := blockpool.GetShardList(n)
	defer sl.Release()
	for _, cand := range winner.parity {
		sl.S[cand.shard] = cand.data
	}
	for _, cand := range winner.data {
		sl.S[cand.shard] = cand.data
	}
	out, err := s.code.DecodeBlock(block, sl.S)
	if err != nil {
		return nil, err
	}
	if !expect.known {
		expect = pluralitySum(decTally)
	}
	if expect.known && erasure.Sum64(out) != expect.sum {
		// Some member of the winning set fed bad bytes into the decode:
		// escalate to the exhaustive survivor-set search, which also
		// pinpoints the culprit.
		return s.verifiedDecode(ctx, stripe, block, version, expect)
	}
	return out, nil
}

// vectorKey renders a version vector as a map key.
func vectorKey(v []uint64) string {
	buf := make([]byte, 0, len(v)*8)
	for _, x := range v {
		for shift := 0; shift < 64; shift += 8 {
			buf = append(buf, byte(x>>uint(shift)))
		}
	}
	return string(buf)
}
