package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// TestNaiveSlotOnlyDecodeReturnsGarbage documents a soundness gap in
// the paper's Algorithm 2 and shows this implementation avoids it.
//
// Algorithm 2 selects decode shards by checking only V[i] — the
// version of the *target* block folded into each candidate. But two
// shards can both be current for block i while folding different
// versions of some other block j: mixing them makes the linear system
// inconsistent and the decoded block i is garbage. This arises from
// two degraded-but-successful writes to different blocks whose down
// sets differ — no failures beyond the paper's own model are needed.
//
// The test builds exactly that state on a (5,2) code, demonstrates
// that version-blind decoding (the erasure layer fed with the shards
// Algorithm 2's check would accept) yields a wrong block, and that the
// protocol's full-vector grouping instead returns ErrNotReadable —
// trading availability, never correctness. Repairing the stale parity
// then restores readability.
func TestNaiveSlotOnlyDecodeReturnsGarbage(t *testing.T) {
	const n, k = 5, 2
	code, err := erasure.New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid over n-k+1 = 4 nodes: one flat level, w_0 = 3.
	cfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 0, B: 4, H: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := sim.NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	nodes := make([]NodeClient, n)
	for j := 0; j < n; j++ {
		nodes[j] = cluster.Node(j)
	}
	sys, err := NewSystem(code, cfg, nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const size = 32
	x0 := bytes.Repeat([]byte{0x10}, size)
	x1 := bytes.Repeat([]byte{0x20}, size)
	if err := sys.SeedStripe(context.Background(), 1, [][]byte{x0, x1}); err != nil {
		t.Fatal(err)
	}

	// Degraded write 1: block 0 -> x0new while parity shard 4 is down.
	// Quorum: N0, P2, P3 (3 of the 4 trapezoid nodes).
	x0new := bytes.Repeat([]byte{0x1F}, size)
	cluster.Crash(4)
	if err := sys.WriteBlock(context.Background(), 1, 0, x0new); err != nil {
		t.Fatal(err)
	}
	cluster.Restart(4)

	// Degraded write 2: block 1 -> x1new while parity shard 2 is down.
	// Quorum: N1, P3, P4. Now P2 folds (x0new, x1-old) and P4 folds
	// (x0-old, x1new): both partially stale, differently.
	x1new := bytes.Repeat([]byte{0x2F}, size)
	cluster.Crash(2)
	if err := sys.WriteBlock(context.Background(), 1, 1, x1new); err != nil {
		t.Fatal(err)
	}
	cluster.Restart(2)

	// Lose the data node of block 0 and the only fully fresh parity.
	cluster.Crash(0)
	cluster.Crash(3)

	// The naive selection: P2 carries version 2 for block 0 (current)
	// and N1 carries version 2 for its own block — both pass
	// Algorithm 2's V[i] check. Feeding them to the erasure decoder
	// (which is version-blind) produces a block that is neither the
	// old nor the new value: silent corruption.
	p2chunk, err := cluster.Node(2).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p2chunk.Versions[0] != 2 || p2chunk.Versions[1] != 1 {
		t.Fatalf("setup drift: P2 versions = %v, want [2 1]", p2chunk.Versions)
	}
	n1chunk, err := cluster.Node(1).ReadChunk(context.Background(), sim.ChunkID{Stripe: 1, Shard: 1})
	if err != nil {
		t.Fatal(err)
	}
	naiveShards := make([][]byte, n)
	naiveShards[1] = n1chunk.Data // x1new
	naiveShards[2] = p2chunk.Data // folds x0new with x1-old
	naiveBlock0, err := code.DecodeBlock(0, naiveShards)
	if err != nil {
		t.Fatalf("naive decode unexpectedly failed: %v", err)
	}
	if bytes.Equal(naiveBlock0, x0new) || bytes.Equal(naiveBlock0, x0) {
		t.Fatal("expected the naive decode to produce garbage; scenario lost its teeth")
	}

	// The protocol's full-vector grouping refuses instead of lying.
	_, _, err = sys.ReadBlock(context.Background(), 1, 0)
	if !errors.Is(err, ErrNotReadable) {
		t.Fatalf("err = %v, want ErrNotReadable (never garbage)", err)
	}

	// Bring the fresh parity back: the group {P3, N1} is consistent
	// at the latest versions and the read returns the correct block.
	cluster.Restart(3)
	got, version, err := sys.ReadBlock(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || !bytes.Equal(got, x0new) {
		t.Fatalf("recovered read = v%d, wrong content", version)
	}

	// And RepairStripe converges the stragglers without regressing
	// any committed write.
	cluster.RestartAll()
	if _, ahead, err := sys.RepairStripe(context.Background(), 1); err != nil {
		t.Fatal(err)
	} else if len(ahead) != 0 {
		t.Fatalf("unexpected ahead shards %v after full heal", ahead)
	}
	for _, blockCheck := range []struct {
		idx  int
		want []byte
	}{{0, x0new}, {1, x1new}} {
		got, _, err := sys.ReadBlock(context.Background(), 1, blockCheck.idx)
		if err != nil || !bytes.Equal(got, blockCheck.want) {
			t.Fatalf("post-repair block %d wrong (%v)", blockCheck.idx, err)
		}
	}
}
