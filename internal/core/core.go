// Package core implements the paper's contribution: the trapezoid
// quorum protocol dedicated to (n,k) MDS erasure-coded storage
// (TRAP-ERC), together with its full-replication sibling (TRAP-FR).
//
// For each data block b_i of a stripe, the protocol organises the node
// holding the original block (trapezoid position 0, always at level 0)
// and the n−k parity nodes on a logical trapezoid. Writes follow
// Algorithm 1: the data node receives the new block, every reachable
// parity node whose version matches receives the delta
// α_{j,i}·(x−old), and the write commits only if every level reaches
// its write threshold w_l. Reads follow Algorithm 2: version vectors
// are collected level by level until some level yields
// r_l = s_l−w_l+1 answers; the block is then served directly by its
// data node when fresh, or decoded from any k mutually consistent
// up-to-date shards otherwise.
//
// Deviation from the paper, documented in DESIGN.md: Algorithm 1 as
// published leaves partially-applied updates behind when a write
// fails mid-quorum ("failed-write residue"), which can alias two
// different contents under one version number. This implementation
// (a) makes the parity version-check-and-add atomic per node instead
// of the paper's racy check-then-add, and (b) rolls back its own
// partial updates on write failure, best-effort. The residue hazard
// itself is reproduced and demonstrated in the test suite.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"trapquorum/client"
	"trapquorum/internal/blockpool"
	"trapquorum/internal/erasure"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
)

// Protocol-level errors.
var (
	// ErrWriteFailed is Algorithm 1's FAIL: some level could not
	// reach its write threshold.
	ErrWriteFailed = errors.New("core: write quorum not reached")
	// ErrNotReadable is Algorithm 2's ∅: no level reached its version
	// check threshold, or no consistent decode set exists.
	ErrNotReadable = errors.New("core: block not readable")
	// ErrUnknownStripe reports an operation on a stripe that was
	// never seeded.
	ErrUnknownStripe = errors.New("core: unknown stripe")
	// ErrBlockSize reports a write whose payload does not match the
	// stripe's block size.
	ErrBlockSize = errors.New("core: block size mismatch")
	// ErrBadIndex reports an out-of-range data block index.
	ErrBadIndex = errors.New("core: data block index out of range")
	// ErrSeedIncomplete reports a bootstrap that could not reach
	// every node.
	ErrSeedIncomplete = errors.New("core: seeding requires all stripe nodes up")
)

// NodeClient is the per-node RPC surface the protocol uses — the
// public, transport-agnostic contract of the client package. *sim.Node
// implements it; external backends implement it over their own
// transport; tests substitute fault-injecting fakes.
type NodeClient = client.NodeClient

// Interface conformance check.
var _ NodeClient = (*sim.Node)(nil)

// OpError is the typed wrapper of the protocol's error taxonomy: it
// records which operation failed and where (stripe, data block,
// trapezoid level, node), while errors.Is keeps seeing the sentinel —
// ErrWriteFailed, ErrNotReadable, context.Canceled,
// context.DeadlineExceeded — through Unwrap.
type OpError struct {
	// Op names the protocol operation: "write", "read", "seed",
	// "repair", "scrub".
	Op string
	// Stripe is the stripe the operation addressed.
	Stripe uint64
	// Block is the data block index, or -1 when not applicable.
	Block int
	// Level is the trapezoid level being serviced when the operation
	// failed, or -1 when not applicable.
	Level int
	// Node is the stripe shard/node involved, or -1 when not
	// applicable.
	Node int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *OpError) Error() string {
	msg := fmt.Sprintf("core: %s stripe %d", e.Op, e.Stripe)
	if e.Block >= 0 {
		msg += fmt.Sprintf(" block %d", e.Block)
	}
	if e.Level >= 0 {
		msg += fmt.Sprintf(" level %d", e.Level)
	}
	if e.Node >= 0 {
		msg += fmt.Sprintf(" node %d", e.Node)
	}
	return msg + ": " + e.Err.Error()
}

// Unwrap exposes the underlying cause to errors.Is/errors.As.
func (e *OpError) Unwrap() error { return e.Err }

// opErr builds an OpError with no block/level/node detail.
func opErr(op string, stripe uint64, err error) *OpError {
	return &OpError{Op: op, Stripe: stripe, Block: -1, Level: -1, Node: -1, Err: err}
}

// Metrics aggregates protocol-level counters. The split between
// DirectReads and DecodeReads mirrors the P1/P2 decomposition of the
// paper's equation (13).
type Metrics struct {
	Writes       atomic.Int64
	FailedWrites atomic.Int64
	DirectReads  atomic.Int64
	DecodeReads  atomic.Int64
	FailedReads  atomic.Int64
	Rollbacks    atomic.Int64
	Repairs      atomic.Int64
	HedgedRPCs   atomic.Int64
	// CorruptShards counts corruption observations: shards whose
	// content disagreed with the cross-checksum record majority, or
	// whose node answered client.ErrCorrupt. One lying node read
	// repeatedly counts once per observation, not once per node.
	CorruptShards atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	Writes        int64
	FailedWrites  int64
	DirectReads   int64
	DecodeReads   int64
	FailedReads   int64
	Rollbacks     int64
	Repairs       int64
	HedgedRPCs    int64
	CorruptShards int64
}

// Options configures a System.
type Options struct {
	// DisableRollback turns off the best-effort rollback of partial
	// writes, reproducing the paper's Algorithm 1 verbatim. Used by
	// the residue-hazard tests and ablation benches.
	DisableRollback bool
	// Concurrency bounds the in-flight per-node RPCs of one quorum
	// operation. 0 (the default) contacts every node of the operation
	// at once; 1 serialises RPCs, reproducing the pre-concurrent
	// engine for comparison benchmarks.
	Concurrency int
	// Hedge enables tail-latency hedging of read-path RPCs; the zero
	// value disables it. See HedgeConfig.
	Hedge HedgeConfig
	// NodeGate, when non-nil, is consulted before every RPC to node
	// j (by slice index): false fails the RPC locally with ErrNodeDown
	// instead of touching the transport. Backends with per-node
	// circuit breakers plug their breaker state in here, so fan-out
	// and hedging stop burning RPCs — and hedge slots — on nodes known
	// to be bad: a gated node fails before any hedge timer fires, so
	// it is never a useful hedge target, and the quorum engine decodes
	// around it exactly like a fail-stopped node. Must be fast and
	// safe for concurrent use.
	NodeGate func(node int) bool
	// Epoch, when non-zero, stamps every RPC the system issues with
	// this placement epoch (client.WithEpoch): epoch-guarding nodes
	// reject the RPC once the epoch is retired, fencing a coordinator
	// that reconfigured past this system. A System is built per
	// (epoch, placement), so the epoch is a constant of the system.
	Epoch uint64
}

type stripeInfo struct {
	blockSize int
}

// System is a TRAP-ERC storage system: an (n,k) code, a trapezoid
// configuration over n−k+1 positions, and the n stripe nodes. It is
// safe for concurrent use; writes to the same (stripe, block) are
// serialised by a per-block lock (the paper assumes classical
// concurrency control above the protocol).
type System struct {
	code  *erasure.Code
	lay   *trapezoid.Layout
	nodes []NodeClient
	opts  Options

	mu          sync.Mutex
	stripes     map[uint64]stripeInfo
	locks       map[blockKey]*sync.Mutex
	objectSizes map[uint64]int

	metrics   Metrics
	hedge     *hedger // nil when hedging is disabled
	corruptFn atomic.Pointer[func(shard int)]
}

type blockKey struct {
	stripe uint64
	block  int
}

// NewSystem assembles a System. nodes[j] stores stripe shard j, so
// len(nodes) must equal the code's n, and the trapezoid must hold
// exactly n−k+1 positions (equation 5).
func NewSystem(code *erasure.Code, cfg trapezoid.Config, nodes []NodeClient, opts Options) (*System, error) {
	if code == nil {
		return nil, errors.New("core: nil code")
	}
	if opts.Concurrency < 0 {
		return nil, fmt.Errorf("core: concurrency %d invalid (need >= 0)", opts.Concurrency)
	}
	if opts.Hedge.Quantile < 0 || opts.Hedge.Quantile >= 1 || opts.Hedge.Delay < 0 {
		return nil, fmt.Errorf("core: hedge config delay=%v quantile=%v invalid (need delay >= 0, 0 <= quantile < 1)",
			opts.Hedge.Delay, opts.Hedge.Quantile)
	}
	lay, err := trapezoid.NewLayout(cfg)
	if err != nil {
		return nil, err
	}
	if got, want := lay.NbNodes(), code.N()-code.K()+1; got != want {
		return nil, fmt.Errorf("core: trapezoid holds %d positions, need n-k+1 = %d", got, want)
	}
	if len(nodes) != code.N() {
		return nil, fmt.Errorf("core: got %d nodes, need n = %d", len(nodes), code.N())
	}
	for idx, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("core: node %d is nil", idx)
		}
	}
	s := &System{
		code:    code,
		lay:     lay,
		nodes:   append([]NodeClient(nil), nodes...),
		opts:    opts,
		stripes: make(map[uint64]stripeInfo),
		locks:   make(map[blockKey]*sync.Mutex),
	}
	if opts.Epoch != 0 {
		// Innermost wrapper: the epoch tag must ride every RPC that
		// reaches the transport, including ones the gate lets through.
		for j := range s.nodes {
			s.nodes[j] = &epochNode{NodeClient: s.nodes[j], epoch: opts.Epoch}
		}
	}
	if opts.NodeGate != nil {
		// Wrap every node so the gate covers each RPC the engine can
		// issue — fan-out, hedging, repair, scrub — without call-site
		// changes.
		for j := range s.nodes {
			s.nodes[j] = &gatedNode{NodeClient: s.nodes[j], node: j, gate: opts.NodeGate}
		}
	}
	s.hedge = newHedger(opts.Hedge, &s.metrics.HedgedRPCs)
	return s, nil
}

// Code returns the system's erasure code.
func (s *System) Code() *erasure.Code { return s.code }

// Layout returns the system's trapezoid layout.
func (s *System) Layout() *trapezoid.Layout { return s.lay }

// Metrics returns a snapshot of the protocol counters.
func (s *System) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Writes:        s.metrics.Writes.Load(),
		FailedWrites:  s.metrics.FailedWrites.Load(),
		DirectReads:   s.metrics.DirectReads.Load(),
		DecodeReads:   s.metrics.DecodeReads.Load(),
		FailedReads:   s.metrics.FailedReads.Load(),
		Rollbacks:     s.metrics.Rollbacks.Load(),
		Repairs:       s.metrics.Repairs.Load(),
		HedgedRPCs:    s.metrics.HedgedRPCs.Load(),
		CorruptShards: s.metrics.CorruptShards.Load(),
	}
}

// SetCorruptionHandler installs a callback invoked (synchronously, from
// protocol goroutines) every time a shard is observed corrupt: bad
// bytes against the record majority, or a node answering
// client.ErrCorrupt. The self-heal loop uses it to pin the node's
// health state and schedule a rebuild. A nil fn removes the handler.
func (s *System) SetCorruptionHandler(fn func(shard int)) {
	if fn == nil {
		s.corruptFn.Store(nil)
		return
	}
	s.corruptFn.Store(&fn)
}

// reportCorrupt records one corruption observation against a stripe
// shard and notifies the handler, if any.
func (s *System) reportCorrupt(shard int) {
	s.metrics.CorruptShards.Add(1)
	if fp := s.corruptFn.Load(); fp != nil {
		(*fp)(shard)
	}
}

// blockLock returns the mutex serialising writers of one block.
func (s *System) blockLock(stripe uint64, block int) *sync.Mutex {
	key := blockKey{stripe, block}
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.locks[key]
	if !ok {
		l = &sync.Mutex{}
		s.locks[key] = l
	}
	return l
}

// stripeBlockSize returns the registered block size for a stripe.
func (s *System) stripeBlockSize(stripe uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.stripes[stripe]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownStripe, stripe)
	}
	return info.blockSize, nil
}

// ForgetStripe drops a stripe's registration — block size, per-block
// write locks, object-size mapping — after its chunks have been
// deleted, so a long-lived System does not accumulate dead entries
// (stripe ids are never reused). Forgetting an unknown stripe is a
// no-op.
func (s *System) ForgetStripe(stripe uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.stripes, stripe)
	delete(s.objectSizes, stripe)
	for key := range s.locks {
		if key.stripe == stripe {
			delete(s.locks, key)
		}
	}
}

// Stripes returns the ids of every seeded stripe, in unspecified order.
func (s *System) Stripes() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.stripes))
	for id := range s.stripes {
		out = append(out, id)
	}
	return out
}

// shardForPosition maps a trapezoid position to the stripe shard it
// stores for data block i: position 0 is the data node N_i, positions
// 1..n−k are the parity shards k..n−1 in order.
func (s *System) shardForPosition(block, pos int) int {
	if pos == 0 {
		return block
	}
	return s.code.K() + pos - 1
}

// chunkID names the chunk of one stripe shard.
func chunkID(stripe uint64, shard int) sim.ChunkID {
	return sim.ChunkID{Stripe: stripe, Shard: shard}
}

// versionOfShard extracts the version of data block `block` from a
// shard's version vector: slot 0 for the data shard itself, slot
// `block` for parity shards.
func (s *System) versionOfShard(block, shard int, versions []uint64) (uint64, bool) {
	slot := 0
	if shard >= s.code.K() {
		slot = block
	} else if shard != block {
		// A foreign data shard carries no version of this block.
		return 0, false
	}
	if slot >= len(versions) {
		return 0, false
	}
	return versions[slot], true
}

// versionSlot returns which version slot of shard tracks data block
// `block`: slot 0 on the data shard, slot `block` on parity shards.
func (s *System) versionSlot(block, shard int) int {
	if shard >= s.code.K() {
		return block
	}
	return 0
}

// SeedStripe bootstraps a stripe: it encodes the k data blocks into
// pooled parity buffers and installs every shard at version 1 on its
// node, all installs issued in parallel. All n nodes must be reachable
// — initial placement is an allocation step, not a quorum operation.
// Blocks must be non-empty and equally sized. On failure some shards
// may already be installed; the caller owns cleanup (the service layer
// deletes them).
func (s *System) SeedStripe(ctx context.Context, stripe uint64, data [][]byte) error {
	k, n := s.code.K(), s.code.N()
	size, err := s.code.DataSize(data)
	if err != nil {
		return err
	}
	parity := make([][]byte, n-k)
	blks := make([]*blockpool.Block, n-k)
	defer func() {
		for _, b := range blks {
			b.Release()
		}
	}()
	for j := range parity {
		blks[j] = blockpool.GetBlock(size)
		parity[j] = blks[j].B
	}
	if err := s.code.EncodeInto(parity, data); err != nil {
		return err
	}
	shard := func(j int) []byte {
		if j < k {
			return data[j]
		}
		return parity[j-k]
	}
	parityVersions := make([]uint64, k)
	for i := range parityVersions {
		parityVersions[i] = 1
	}
	// The cross-checksum record: every shard learns the content hash of
	// every data block at version 1, so readers can verify served bytes
	// against a majority of independent opinions from day one.
	dataSums := make([]client.BlockSum, k)
	for i := range dataSums {
		dataSums[i] = client.BlockSum{Version: 1, Sum: erasure.Sum64(data[i])}
	}
	errNode := -1
	var nodeErr error
	Fanout(ctx, s.opLimit(), n, func(cctx context.Context, j int) (struct{}, error) {
		versions := parityVersions
		sums := dataSums
		if j < k {
			versions = []uint64{1}
			sums = dataSums[j : j+1 : j+1]
		}
		return struct{}{}, s.nodes[j].PutChunk(cctx, chunkID(stripe, j), shard(j), versions, sums...)
	}, func(j int, _ struct{}, err error) bool {
		if err == nil {
			return true
		}
		// Report the lowest-numbered genuinely failing node (matching
		// the deterministic error selection of the repair sweeps), not
		// whichever failure settled first; installs cancelled by our
		// own early stop are collateral, not the cause.
		if !errors.Is(err, context.Canceled) || ctx.Err() != nil {
			if errNode < 0 || j < errNode {
				errNode = j
				nodeErr = err
			}
		}
		return false // a seed needs every node: abort the rest
	})
	if errNode >= 0 || ctx.Err() != nil {
		if cerr := ctx.Err(); cerr != nil {
			return opErr("seed", stripe, cerr)
		}
		return &OpError{Op: "seed", Stripe: stripe, Block: -1, Level: -1, Node: errNode,
			Err: fmt.Errorf("%w: node %d: %w", ErrSeedIncomplete, errNode, nodeErr)}
	}
	s.mu.Lock()
	s.stripes[stripe] = stripeInfo{blockSize: size}
	s.mu.Unlock()
	return nil
}
