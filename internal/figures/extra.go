package figures

import (
	"fmt"

	"trapquorum/internal/availability"
	"trapquorum/internal/montecarlo"
	"trapquorum/internal/quorum"
	"trapquorum/internal/trapezoid"
)

// MonteCarloValidation builds the V1 experiment: Monte-Carlo estimates
// of write, FR-read and ERC-read availability on the Figure-3
// configuration, side by side with the closed forms, at the given
// trial count. Columns come in (formula, estimate) pairs.
func MonteCarloValidation(trials int, seed int64) (*Figure, error) {
	cfg, err := trapezoid.NewConfig(Fig3Shape, Fig3W)
	if err != nil {
		return nil, err
	}
	e := availability.ERCParams{Config: cfg, N: Fig3N, K: Fig3K}
	x := PGrid(0.1, 1, 0.1)
	series := []Series{
		{Name: "write(eq8)"}, {Name: "write(mc)"},
		{Name: "readFR(eq10)"}, {Name: "readFR(mc)"},
		{Name: "readERC(eq13)"}, {Name: "readERC(mc)"},
		{Name: "readERC(exact)"}, {Name: "readERC(mc-proto)"},
	}
	for _, p := range x {
		series[0].Y = append(series[0].Y, availability.Write(cfg, p))
		mw, err := montecarlo.EstimateWrite(cfg, p, trials, seed)
		if err != nil {
			return nil, err
		}
		series[1].Y = append(series[1].Y, mw.Estimate())

		series[2].Y = append(series[2].Y, availability.ReadFR(cfg, p))
		mfr, err := montecarlo.EstimateReadFR(cfg, p, trials, seed+1)
		if err != nil {
			return nil, err
		}
		series[3].Y = append(series[3].Y, mfr.Estimate())

		v13, err := availability.ReadERC(e, p)
		if err != nil {
			return nil, err
		}
		series[4].Y = append(series[4].Y, v13)
		m13, err := montecarlo.EstimateReadERC(e, montecarlo.ModelEq13, p, trials, seed+2)
		if err != nil {
			return nil, err
		}
		series[5].Y = append(series[5].Y, m13.Estimate())

		vex, err := availability.ReadERCExact(e, p)
		if err != nil {
			return nil, err
		}
		series[6].Y = append(series[6].Y, vex)
		mex, err := montecarlo.EstimateReadERC(e, montecarlo.ModelProtocol, p, trials, seed+3)
		if err != nil {
			return nil, err
		}
		series[7].Y = append(series[7].Y, mex.Estimate())
	}
	return &Figure{
		ID:     "mcval",
		Title:  fmt.Sprintf("Monte-Carlo validation of the closed forms (%d trials/point)", trials),
		XLabel: "p",
		YLabel: "availability",
		X:      x,
		Series: series,
	}, nil
}

// ablationSystems builds the baseline systems on node counts close to
// the trapezoid's 8 so the geometry, not the node count, drives the
// comparison.
func ablationSystems() ([]quorum.System, error) {
	cfg, err := trapezoid.NewConfig(Fig3Shape, Fig3W)
	if err != nil {
		return nil, err
	}
	trap, err := quorum.NewTrapezoidFR(cfg)
	if err != nil {
		return nil, err
	}
	rowa, err := quorum.NewROWA(8)
	if err != nil {
		return nil, err
	}
	maj, err := quorum.NewMajority(8)
	if err != nil {
		return nil, err
	}
	grid, err := quorum.NewGrid(2, 4)
	if err != nil {
		return nil, err
	}
	tree, err := quorum.NewTree(2, 2) // 7 nodes: closest complete tree
	if err != nil {
		return nil, err
	}
	return []quorum.System{trap, rowa, maj, grid, tree}, nil
}

// AblationWrite compares write availability of the trapezoid protocol
// against the classical quorum systems of the related-work section on
// matched node counts (A1 experiment).
func AblationWrite() (*Figure, error) {
	systems, err := ablationSystems()
	if err != nil {
		return nil, err
	}
	x := PGrid(0, 1, 0.05)
	fig := &Figure{
		ID:     "ablation-write",
		Title:  "Write availability: trapezoid vs classical quorum systems (~8 nodes)",
		XLabel: "p",
		YLabel: "P_write",
		X:      x,
	}
	for _, sys := range systems {
		s := Series{Name: sys.Name()}
		for _, p := range x {
			s.Y = append(s.Y, sys.WriteAvailability(p))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationRead is the read-side companion of AblationWrite.
func AblationRead() (*Figure, error) {
	systems, err := ablationSystems()
	if err != nil {
		return nil, err
	}
	x := PGrid(0, 1, 0.05)
	fig := &Figure{
		ID:     "ablation-read",
		Title:  "Read availability: trapezoid vs classical quorum systems (~8 nodes)",
		XLabel: "p",
		YLabel: "P_read",
		X:      x,
	}
	for _, sys := range systems {
		s := Series{Name: sys.Name()}
		for _, p := range x {
			s.Y = append(s.Y, sys.ReadAvailability(p))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// UpdateCost builds the A2 experiment: the number of node operations a
// single-block update needs under the basic ERC update scheme the
// paper's introduction describes (read+write on n−k+1 blocks ⇒
// 2(n−k+1) ops) versus the trapezoid write quorum |WQ| = Σ w_l, as k
// varies with n = 15. The crossing illustrates when the quorum
// protocol's geometry is cheaper than touching every redundant block.
func UpdateCost() (*Figure, error) {
	const n = 15
	var x []float64
	basic := Series{Name: "basic in-place (2(n-k+1))"}
	quorumOps := Series{Name: "trapezoid |WQ| (best shape)"}
	for k := 1; k < n; k++ {
		nb := n - k + 1
		shapes := trapezoid.EnumerateShapes(nb, 4)
		bestWQ := -1
		for _, shape := range shapes {
			cfg, err := trapezoid.NewConfig(shape, 1)
			if err != nil {
				continue
			}
			if wq := cfg.WriteQuorumSize(); bestWQ == -1 || wq < bestWQ {
				bestWQ = wq
			}
		}
		if bestWQ == -1 {
			continue
		}
		x = append(x, float64(k))
		basic.Y = append(basic.Y, float64(2*nb))
		quorumOps.Y = append(quorumOps.Y, float64(bestWQ))
	}
	return &Figure{
		ID:     "update-cost",
		Title:  "Single-block update cost in node operations (n=15)",
		XLabel: "k",
		YLabel: "node ops",
		X:      x,
		Series: []Series{basic, quorumOps},
	}, nil
}

// All returns every figure at default settings, in presentation order.
func All(mcTrials int, seed int64) ([]*Figure, error) {
	builders := []func() (*Figure, error){
		Fig2, Fig3, Fig4, Fig5,
		func() (*Figure, error) { return MonteCarloValidation(mcTrials, seed) },
		AblationWrite, AblationRead, UpdateCost,
		func() (*Figure, error) { return Endurance(3000, 15, seed) },
	}
	var out []*Figure
	for _, build := range builders {
		fig, err := build()
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}
