// Package figures regenerates every figure of the paper's evaluation
// section (§IV-D, Figures 2–5) plus the validation and ablation
// studies this reproduction adds. Each generator returns a Figure —
// named series over a shared x axis — that renders as an aligned text
// table or CSV. cmd/trapbench prints them; bench_test.go wraps each in
// a testing.B target; EXPERIMENTS.md records paper-vs-measured values.
//
// The paper does not state the trapezoid parameters behind each
// figure. DESIGN.md §3 documents the reconstruction: the parameters
// here reproduce every number the text quotes (e.g. FR ≈ 75% and
// ERC ≈ 63% read availability at p = 0.5 for Figure 3).
package figures

import (
	"fmt"
	"strings"
)

// Series is one named curve: y values over the figure's x grid.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a set of curves over one x axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// PGrid returns the node-availability grid [lo, hi] with the given
// step, inclusive on both ends (guarding float drift).
func PGrid(lo, hi, step float64) []float64 {
	var out []float64
	for p := lo; p <= hi+1e-9; p += step {
		v := p
		if v > 1 {
			v = 1
		}
		out = append(out, v)
	}
	return out
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "%-8s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&b, "%-8.3f", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %16.6f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%g", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// At returns the y value of the named series at the x closest to the
// requested value — used by tests and EXPERIMENTS.md to pin quoted
// numbers.
func (f *Figure) At(series string, x float64) (float64, error) {
	idx := -1
	best := 0.0
	for i, xv := range f.X {
		d := xv - x
		if d < 0 {
			d = -d
		}
		if idx == -1 || d < best {
			idx, best = i, d
		}
	}
	if idx == -1 {
		return 0, fmt.Errorf("figures: empty x grid")
	}
	for _, s := range f.Series {
		if s.Name == series {
			return s.Y[idx], nil
		}
	}
	return 0, fmt.Errorf("figures: no series %q in %s", series, f.ID)
}
