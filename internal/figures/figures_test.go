package figures

import (
	"math"
	"strings"
	"testing"
)

func TestPGrid(t *testing.T) {
	g := PGrid(0, 1, 0.25)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(g) != len(want) {
		t.Fatalf("grid = %v", g)
	}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-9 {
			t.Fatalf("grid = %v", g)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	fig, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d, want w=1..5", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != len(fig.X) {
			t.Fatalf("series %s ragged", s.Name)
		}
	}
	// Every curve starts at 0 (p=0) and ends at 1 (p=1).
	for _, s := range fig.Series {
		if s.Y[0] != 0 || math.Abs(s.Y[len(s.Y)-1]-1) > 1e-9 {
			t.Fatalf("series %s endpoints %v..%v", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
	// Larger w ⇒ lower curve at interior points.
	mid := len(fig.X) / 2
	for i := 1; i < len(fig.Series); i++ {
		if fig.Series[i].Y[mid] >= fig.Series[i-1].Y[mid] {
			t.Fatalf("w ordering violated at p=%v", fig.X[mid])
		}
	}
}

// TestFig3PaperQuotes pins the numbers the paper's text quotes about
// Figure 3.
func TestFig3PaperQuotes(t *testing.T) {
	fig, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fig.At("TRAP-FR", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fr-0.75) > 1e-9 {
		t.Fatalf("FR at 0.5 = %v, paper quotes 75%%", fr)
	}
	erc, err := fig.At("TRAP-ERC(eq13)", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if erc < 0.63 || erc > 0.64 {
		t.Fatalf("ERC at 0.5 = %v, paper quotes ~63%%", erc)
	}
	// "No difference when p >= 0.8".
	for _, p := range []float64{0.8, 0.9, 1.0} {
		frv, _ := fig.At("TRAP-FR", p)
		ercv, _ := fig.At("TRAP-ERC(eq13)", p)
		if math.Abs(frv-ercv) > 0.01 {
			t.Fatalf("p=%v: |FR-ERC| = %v", p, math.Abs(frv-ercv))
		}
	}
	// The exact curve lower-bounds eq13 everywhere.
	var eq13, exact *Series
	for i := range fig.Series {
		switch fig.Series[i].Name {
		case "TRAP-ERC(eq13)":
			eq13 = &fig.Series[i]
		case "TRAP-ERC(exact)":
			exact = &fig.Series[i]
		}
	}
	for i := range fig.X {
		if exact.Y[i] > eq13.Y[i]+1e-9 {
			t.Fatalf("exact exceeds eq13 at p=%v", fig.X[i])
		}
	}
}

func TestFig4RedundancyOrdering(t *testing.T) {
	fig, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(Fig4Cases) {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// At p = 0.5, availability increases with redundancy (series are
	// ordered k=10, 8, 6, 4 — increasing n−k).
	idx := -1
	for i, x := range fig.X {
		if math.Abs(x-0.5) < 1e-9 {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("p=0.5 not on grid")
	}
	for i := 1; i < len(fig.Series); i++ {
		if fig.Series[i].Y[idx] <= fig.Series[i-1].Y[idx] {
			t.Fatalf("redundancy ordering violated: %s <= %s at p=0.5",
				fig.Series[i].Name, fig.Series[i-1].Name)
		}
	}
}

func TestFig5StorageValues(t *testing.T) {
	fig, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Paper's example: at n=15, k=8 full replication uses 8 blocks.
	fr, err := fig.At("TRAP-FR", 8)
	if err != nil {
		t.Fatal(err)
	}
	if fr != 8 {
		t.Fatalf("FR at k=8 = %v", fr)
	}
	erc, err := fig.At("TRAP-ERC", 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(erc-1.875) > 1e-9 {
		t.Fatalf("ERC at k=8 = %v, eq15 gives 1.875", erc)
	}
	// ERC is never above FR.
	for i := range fig.X {
		if fig.Series[1].Y[i] > fig.Series[0].Y[i]+1e-9 {
			t.Fatalf("ERC above FR at k=%v", fig.X[i])
		}
	}
}

func TestMonteCarloValidationCloseness(t *testing.T) {
	fig, err := MonteCarloValidation(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs (formula, estimate) must agree within Monte-Carlo noise.
	for pair := 0; pair < len(fig.Series); pair += 2 {
		formula := fig.Series[pair]
		estimate := fig.Series[pair+1]
		for i := range fig.X {
			se := math.Sqrt(formula.Y[i]*(1-formula.Y[i])/20000) + 1e-6
			if diff := math.Abs(formula.Y[i] - estimate.Y[i]); diff > 5*se {
				t.Fatalf("%s vs %s at p=%v: diff %v > 5se %v",
					formula.Name, estimate.Name, fig.X[i], diff, 5*se)
			}
		}
	}
}

func TestAblationShapes(t *testing.T) {
	w, err := AblationWrite()
	if err != nil {
		t.Fatal(err)
	}
	r, err := AblationRead()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Series) != 5 || len(r.Series) != 5 {
		t.Fatalf("series = %d/%d, want 5 systems", len(w.Series), len(r.Series))
	}
	// ROWA: best reads, worst writes at p=0.5 among all systems.
	var rowaW, rowaR float64
	for i, s := range w.Series {
		if strings.HasPrefix(s.Name, "ROWA") {
			rowaW, _ = w.At(s.Name, 0.5)
			rowaR, _ = r.At(r.Series[i].Name, 0.5)
		}
	}
	for i, s := range w.Series {
		if strings.HasPrefix(s.Name, "ROWA") {
			continue
		}
		v, _ := w.At(s.Name, 0.5)
		if v < rowaW {
			t.Fatalf("%s writes below ROWA", s.Name)
		}
		rv, _ := r.At(r.Series[i].Name, 0.5)
		if rv > rowaR+1e-9 {
			t.Fatalf("%s reads above ROWA", r.Series[i].Name)
		}
	}
}

func TestUpdateCost(t *testing.T) {
	fig, err := UpdateCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) == 0 {
		t.Fatal("empty update-cost figure")
	}
	// The trapezoid quorum never exceeds the basic scheme's cost.
	for i := range fig.X {
		if fig.Series[1].Y[i] > fig.Series[0].Y[i] {
			t.Fatalf("quorum costlier than basic at k=%v", fig.X[i])
		}
	}
}

func TestTableAndCSVRendering(t *testing.T) {
	fig, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	table := fig.Table()
	if !strings.Contains(table, "FIG5") || !strings.Contains(table, "TRAP-ERC") {
		t.Fatalf("table = %q", table[:80])
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(fig.X)+1 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if lines[0] != "k,TRAP-FR,TRAP-ERC" {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestAtErrors(t *testing.T) {
	fig, _ := Fig5()
	if _, err := fig.At("nope", 3); err == nil {
		t.Fatal("unknown series accepted")
	}
	empty := &Figure{}
	if _, err := empty.At("x", 0); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestAllProducesEveryFigure(t *testing.T) {
	figs, err := All(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 9 {
		t.Fatalf("got %d figures", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
		if len(f.X) == 0 || len(f.Series) == 0 {
			t.Fatalf("figure %s empty", f.ID)
		}
	}
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5", "mcval", "ablation-write", "ablation-read", "update-cost", "endurance"} {
		if !ids[id] {
			t.Fatalf("missing figure %s", id)
		}
	}
}

// TestEnduranceFigure checks the A4 figure's qualitative shape: the
// no-repair write curve ends well below the repaired one, and the
// repaired curves stay near the closed forms throughout.
func TestEnduranceFigure(t *testing.T) {
	fig, err := Endurance(2000, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	last := len(fig.X) - 1
	var noRepairW, repairW float64
	for _, s := range fig.Series {
		switch s.Name {
		case "write(no repair)":
			noRepairW = s.Y[last]
		case "write(repair)":
			repairW = s.Y[last]
		}
	}
	if noRepairW >= repairW-0.1 {
		t.Fatalf("late-window writes: no-repair %v vs repair %v — decay not visible", noRepairW, repairW)
	}
}
