package figures

import (
	"fmt"

	"trapquorum/internal/availability"
	"trapquorum/internal/trapezoid"
)

// Fig1Shape is the trapezoid of the paper's Figure 1:
// s_l = 2l+3 (a=2, b=3, h=2), Nbnode = 15.
var Fig1Shape = trapezoid.Shape{A: 2, B: 3, H: 2}

// Fig3Shape and Fig3W are the reconstructed parameters of Figure 3:
// a=2 b=3 h=1 (Nbnode = 8 = n−k+1 for the (15,8) code) with w = 3.
// They reproduce the quoted FR ≈ 75% / ERC ≈ 63% at p = 0.5 exactly.
var (
	Fig3Shape = trapezoid.Shape{A: 2, B: 3, H: 1}
	Fig3W     = 3
	Fig3N     = 15
	Fig3K     = 8
)

// Fig4Case is one curve of Figure 4: a (15,k) code with the trapezoid
// matched to n−k+1 positions.
type Fig4Case struct {
	K     int
	Shape trapezoid.Shape
	W     int
}

// Fig4Cases are the reconstructed Figure-4 configurations: n = 15
// fixed, k swept so the redundancy n−k varies; each case's trapezoid
// holds exactly n−k+1 nodes.
var Fig4Cases = []Fig4Case{
	{K: 10, Shape: trapezoid.Shape{A: 2, B: 2, H: 1}, W: 2}, // n-k+1 = 6
	{K: 8, Shape: trapezoid.Shape{A: 2, B: 3, H: 1}, W: 3},  // n-k+1 = 8
	{K: 6, Shape: trapezoid.Shape{A: 4, B: 3, H: 1}, W: 4},  // n-k+1 = 10
	{K: 4, Shape: trapezoid.Shape{A: 1, B: 3, H: 2}, W: 3},  // n-k+1 = 12
}

// Fig2 regenerates Figure 2: write availability of TRAP-ERC as a
// function of p for the Figure-1 trapezoid, one curve per w ∈ {1..5}
// (w caps at s_1 = 5). The paper notes equations (8) and (9) coincide,
// so these curves also cover TRAP-FR.
func Fig2() (*Figure, error) {
	x := PGrid(0, 1, 0.05)
	fig := &Figure{
		ID:     "fig2",
		Title:  "Write availability of TRAP-ERC vs node availability p (a=2, b=3, h=2)",
		XLabel: "p",
		YLabel: "P_write",
		X:      x,
	}
	for w := 1; w <= 5; w++ {
		cfg, err := trapezoid.NewConfig(Fig1Shape, w)
		if err != nil {
			return nil, err
		}
		s := Series{Name: fmt.Sprintf("w=%d", w)}
		for _, p := range x {
			s.Y = append(s.Y, availability.Write(cfg, p))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig3 regenerates Figure 3: read availability of TRAP-ERC vs TRAP-FR
// as a function of p on the reconstructed (15,8) configuration. A
// third series — the exact protocol-structural availability this
// reproduction derives (see availability.ReadERCExact) — quantifies
// the optimism of the paper's equation (13).
func Fig3() (*Figure, error) {
	cfg, err := trapezoid.NewConfig(Fig3Shape, Fig3W)
	if err != nil {
		return nil, err
	}
	e := availability.ERCParams{Config: cfg, N: Fig3N, K: Fig3K}
	x := PGrid(0, 1, 0.05)
	fr := Series{Name: "TRAP-FR"}
	erc := Series{Name: "TRAP-ERC(eq13)"}
	exact := Series{Name: "TRAP-ERC(exact)"}
	for _, p := range x {
		fr.Y = append(fr.Y, availability.ReadFR(cfg, p))
		v, err := availability.ReadERC(e, p)
		if err != nil {
			return nil, err
		}
		erc.Y = append(erc.Y, v)
		ev, err := availability.ReadERCExact(e, p)
		if err != nil {
			return nil, err
		}
		exact.Y = append(exact.Y, ev)
	}
	return &Figure{
		ID:     "fig3",
		Title:  "Read availability of TRAP-ERC and TRAP-FR vs p ((15,8), a=2 b=3 h=1, w=3)",
		XLabel: "p",
		YLabel: "P_read",
		X:      x,
		Series: []Series{fr, erc, exact},
	}, nil
}

// Fig4 regenerates Figure 4: read availability of TRAP-ERC as a
// function of p for varying redundancy n−k (n = 15 fixed).
func Fig4() (*Figure, error) {
	x := PGrid(0, 1, 0.05)
	fig := &Figure{
		ID:     "fig4",
		Title:  "Read availability of TRAP-ERC vs p for varying redundancy (n=15)",
		XLabel: "p",
		YLabel: "P_read",
		X:      x,
	}
	for _, c := range Fig4Cases {
		cfg, err := trapezoid.NewConfig(c.Shape, c.W)
		if err != nil {
			return nil, err
		}
		e := availability.ERCParams{Config: cfg, N: 15, K: c.K}
		s := Series{Name: fmt.Sprintf("k=%d (n-k=%d)", c.K, 15-c.K)}
		for _, p := range x {
			v, err := availability.ReadERC(e, p)
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, v)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig5 regenerates Figure 5: storage space used per data block
// (divided by blocksize) for TRAP-FR and TRAP-ERC as a function of k,
// n = 15 (equations 14 and 15). The x axis is k, not p.
func Fig5() (*Figure, error) {
	const n = 15
	var x []float64
	fr := Series{Name: "TRAP-FR"}
	erc := Series{Name: "TRAP-ERC"}
	for k := 1; k < n; k++ {
		x = append(x, float64(k))
		fr.Y = append(fr.Y, availability.StorageFR(n, k))
		erc.Y = append(erc.Y, availability.StorageERC(n, k))
	}
	return &Figure{
		ID:     "fig5",
		Title:  "Storage space used / blocksize vs k (n=15)",
		XLabel: "k",
		YLabel: "D_used/blocksize",
		X:      x,
		Series: []Series{fr, erc},
	}, nil
}
