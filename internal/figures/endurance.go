package figures

import (
	"context"
	"trapquorum/internal/failsched"
	"trapquorum/internal/montecarlo"
	"trapquorum/internal/trapezoid"
)

// Endurance builds the A4 experiment figure: write and read success
// rates over virtual time under an MTBF/MTTR failure process at
// steady-state availability p = 0.85, with a repair daemon versus
// without. The closed form (eq. 8) is drawn as the reference the
// repaired system should track; the no-repair curves expose the decay
// the paper's instantaneous-availability model hides.
func Endurance(horizon float64, windows int, seed int64) (*Figure, error) {
	tcfg, err := trapezoid.NewConfig(Fig3Shape, Fig3W)
	if err != nil {
		return nil, err
	}
	base := montecarlo.EnduranceConfig{
		N: Fig3N, K: Fig3K,
		Trapezoid: tcfg,
		BlockSize: 64,
		Model:     failsched.Model{MTBF: 85, MTTR: 15}, // p = 0.85
		Horizon:   horizon,
		Windows:   windows,
		Seed:      seed,
	}
	noRepair := base
	noRepair.RepairEvery = 0
	withRepair := base
	withRepair.RepairEvery = 5

	repNo, err := montecarlo.RunEndurance(context.Background(), noRepair)
	if err != nil {
		return nil, err
	}
	repYes, err := montecarlo.RunEndurance(context.Background(), withRepair)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "endurance",
		Title:  "Availability over time under MTBF/MTTR failures (p=0.85, (15,8), a=2 b=3 h=1, w=3)",
		XLabel: "time",
		YLabel: "success rate",
	}
	series := []Series{
		{Name: "write(no repair)"},
		{Name: "read(no repair)"},
		{Name: "write(repair)"},
		{Name: "read(repair)"},
	}
	for i := 0; i < windows; i++ {
		fig.X = append(fig.X, repNo.Windows[i].End)
		series[0].Y = append(series[0].Y, repNo.Windows[i].WriteRate())
		series[1].Y = append(series[1].Y, repNo.Windows[i].ReadRate())
		series[2].Y = append(series[2].Y, repYes.Windows[i].WriteRate())
		series[3].Y = append(series[3].Y, repYes.Windows[i].ReadRate())
	}
	fig.Series = series
	return fig, nil
}
