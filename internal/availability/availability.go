// Package availability implements the closed-form read/write
// availability and storage-cost analysis of the paper (§IV,
// equations 7–15) for the trapezoid protocol in both the full
// replication (TRAP-FR) and erasure-coding (TRAP-ERC) instantiations.
//
// Model assumptions (paper §IV): every node is independently available
// with probability p, nodes are fail-stop, and links never fail.
package availability

import (
	"fmt"
	"math"

	"trapquorum/internal/trapezoid"
)

// Binomial returns the binomial coefficient C(z, m) as a float64.
// Out-of-range m yields 0. Computed via log-gamma so that z up to the
// field-size limit (256) stays accurate.
func Binomial(z, m int) float64 {
	if m < 0 || m > z || z < 0 {
		return 0
	}
	if m == 0 || m == z {
		return 1
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return math.Exp(lg(z) - lg(m) - lg(z-m))
}

// Phi implements equation (7): the probability that at least i and at
// most j of z independent nodes are available, each with probability p.
// Arguments outside [0, z] are clamped; an empty range yields 0.
func Phi(z, i, j int, p float64) float64 {
	if z < 0 {
		panic(fmt.Sprintf("availability: Phi with z=%d", z))
	}
	if i < 0 {
		i = 0
	}
	if j > z {
		j = z
	}
	if i > j {
		return 0
	}
	sum := 0.0
	for m := i; m <= j; m++ {
		term := Binomial(z, m)
		if p > 0 {
			term *= math.Pow(p, float64(m))
		} else if m > 0 {
			term = 0
		}
		if p < 1 {
			term *= math.Pow(1-p, float64(z-m))
		} else if z-m > 0 {
			term = 0
		}
		sum += term
	}
	if sum > 1 {
		sum = 1 // guard against float drift in long sums
	}
	return sum
}

// Write implements equations (8) and (9): the probability that a write
// quorum can be assembled, P_write = Π_l Φ_{s_l}(w_l, s_l). The paper's
// central observation is that this is identical for TRAP-FR and
// TRAP-ERC — erasure coding does not change the write path's quorum
// geometry.
func Write(cfg trapezoid.Config, p float64) float64 {
	prod := 1.0
	for l := 0; l <= cfg.Shape.H; l++ {
		sl := cfg.Shape.LevelSize(l)
		prod *= Phi(sl, cfg.W[l], sl, p)
	}
	return prod
}

// ReadFR implements equation (10): read availability under full
// replication. The read succeeds when at least one level can muster
// its version-check threshold r_l = s_l − w_l + 1 — any node with the
// latest version then serves the data directly.
func ReadFR(cfg trapezoid.Config, p float64) float64 {
	prodFail := 1.0
	for l := 0; l <= cfg.Shape.H; l++ {
		sl := cfg.Shape.LevelSize(l)
		rl := cfg.ReadThreshold(l)
		prodFail *= 1 - Phi(sl, rl, sl, p)
	}
	return 1 - prodFail
}

// ERCParams couples a trapezoid configuration with the (n,k) MDS code
// it protects. The trapezoid organises the node holding the original
// block plus the n−k parity nodes, so NbNodes must equal n−k+1
// (equation 5).
type ERCParams struct {
	Config trapezoid.Config
	N, K   int
}

// Validate checks code bounds and the Nbnode = n−k+1 coupling.
func (e ERCParams) Validate() error {
	if err := e.Config.Validate(); err != nil {
		return err
	}
	if e.K < 1 || e.N < e.K {
		return fmt.Errorf("availability: invalid code n=%d k=%d", e.N, e.K)
	}
	if nb := e.Config.Shape.NbNodes(); nb != e.N-e.K+1 {
		return fmt.Errorf("availability: trapezoid holds %d nodes but n-k+1 = %d", nb, e.N-e.K+1)
	}
	return nil
}

// readERCBounds returns the β_l and λ_l of equations (11) and (12).
// Level 0 excludes the original-data node N_i (whose state is
// conditioned on separately), hence the shifted bounds there.
func readERCBounds(cfg trapezoid.Config, l int) (beta, lambda int) {
	rl := cfg.ReadThreshold(l)
	sl := cfg.Shape.LevelSize(l)
	if l == 0 {
		beta = rl - 2
		if beta < 0 {
			beta = 0
		}
		return beta, sl - 1
	}
	return rl - 1, sl
}

// ReadERCParts returns the two summands of equation (13).
//
// P1 is the probability the block is read without decoding: node N_i
// is up (probability p) and at least one level reaches its version
// check threshold.
//
// P2 is the probability the block is read after decoding: N_i is down
// (probability 1−p) and at least k of the remaining n−1 stripe nodes
// are up to reconstruct it.
func ReadERCParts(e ERCParams, p float64) (p1, p2 float64, err error) {
	if err := e.Validate(); err != nil {
		return 0, 0, err
	}
	cfg := e.Config
	prodFail := 1.0
	for l := 0; l <= cfg.Shape.H; l++ {
		beta, lambda := readERCBounds(cfg, l)
		prodFail *= Phi(lambda, 0, beta, p)
	}
	p1 = p * (1 - prodFail)
	p2 = (1 - p) * Phi(e.N-1, e.K, e.N-1, p)
	return p1, p2, nil
}

// ReadERC implements equation (13): read availability of TRAP-ERC,
// P_read = P1 + P2.
func ReadERC(e ERCParams, p float64) (float64, error) {
	p1, p2, err := ReadERCParts(e, p)
	if err != nil {
		return 0, err
	}
	return p1 + p2, nil
}

// StorageFR implements equation (14): disk used per data block under
// full replication, in units of blocksize. The block is replicated on
// the n−k+1 trapezoid nodes.
func StorageFR(n, k int) float64 {
	return float64(n - k + 1)
}

// StorageERC implements equation (15): disk used per data block under
// the ERC scheme, in units of blocksize. The original block occupies
// blocksize and each of the n−k parity fragments blocksize/k, giving
// n/k in total.
func StorageERC(n, k int) float64 {
	return float64(n) / float64(k)
}
