package availability

import "trapquorum/internal/trapezoid"

// ReadERCExact computes the exact structural read availability of
// Algorithm 2 by enumerating every up/down state of the trapezoid's
// n−k+1 nodes (2^(n−k+1) states, fine for the paper's sizes).
//
// It differs from equation (13) in the N_i-down case: the paper's P2
// term only requires k of the remaining n−1 stripe nodes for decoding,
// whereas the protocol as specified must additionally assemble a
// version-check quorum of r_l nodes at some trapezoid level before it
// decodes. ReadERCExact therefore lower-bounds ReadERC; the gap closes
// as p grows. EXPERIMENTS.md quantifies the difference.
//
// State model (quiescent, matching §IV): every node holds the latest
// version; availability is the only obstacle. Trapezoid position 0 is
// N_i; positions 1..n−k are the parity nodes; the k−1 data nodes of
// other blocks live outside the trapezoid and only matter through the
// decode condition, so they are folded in analytically via Phi.
func ReadERCExact(e ERCParams, p float64) (float64, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	lay, err := trapezoid.NewLayout(e.Config)
	if err != nil {
		return 0, err
	}
	nb := lay.NbNodes() // n-k+1
	cfg := e.Config
	total := 0.0
	for state := 0; state < 1<<uint(nb); state++ {
		up := func(pos int) bool { return state&(1<<uint(pos)) != 0 }
		// Probability of this trapezoid state.
		prob := 1.0
		upCount := 0
		for pos := 0; pos < nb; pos++ {
			if up(pos) {
				prob *= p
				upCount++
			} else {
				prob *= 1 - p
			}
		}
		if prob == 0 {
			continue
		}
		// Version check: does any level reach r_l available nodes?
		checkOK := false
		for l := 0; l <= cfg.Shape.H; l++ {
			cnt := 0
			for _, pos := range lay.Level(l) {
				if up(pos) {
					cnt++
				}
			}
			if cnt >= cfg.ReadThreshold(l) {
				checkOK = true
				break
			}
		}
		if !checkOK {
			continue
		}
		if up(0) {
			// N_i serves the block directly (Case 1).
			total += prob
			continue
		}
		// Case 2: decode needs >= k up among the n-1 non-N_i stripe
		// nodes: the parity nodes (in-trapezoid, positions 1..nb-1)
		// plus the k-1 other data nodes (outside, Binomial(k-1, p)).
		parityUp := upCount // up(0) is false here, so all ups are parity
		need := e.K - parityUp
		total += prob * Phi(e.K-1, need, e.K-1, p)
	}
	return total, nil
}

// WriteExact computes write availability by the same enumeration, as
// an independent cross-check of the product form of equations (8)/(9).
func WriteExact(cfg trapezoid.Config, p float64) (float64, error) {
	lay, err := trapezoid.NewLayout(cfg)
	if err != nil {
		return 0, err
	}
	nb := lay.NbNodes()
	total := 0.0
	for state := 0; state < 1<<uint(nb); state++ {
		prob := 1.0
		for pos := 0; pos < nb; pos++ {
			if state&(1<<uint(pos)) != 0 {
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		if prob == 0 {
			continue
		}
		ok := true
		for l := 0; l <= cfg.Shape.H && ok; l++ {
			cnt := 0
			for _, pos := range lay.Level(l) {
				if state&(1<<uint(pos)) != 0 {
					cnt++
				}
			}
			if cnt < cfg.W[l] {
				ok = false
			}
		}
		if ok {
			total += prob
		}
	}
	return total, nil
}

// ReadFRExact computes full-replication read availability by
// enumeration, cross-checking equation (10).
func ReadFRExact(cfg trapezoid.Config, p float64) (float64, error) {
	lay, err := trapezoid.NewLayout(cfg)
	if err != nil {
		return 0, err
	}
	nb := lay.NbNodes()
	total := 0.0
	for state := 0; state < 1<<uint(nb); state++ {
		prob := 1.0
		for pos := 0; pos < nb; pos++ {
			if state&(1<<uint(pos)) != 0 {
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		if prob == 0 {
			continue
		}
		for l := 0; l <= cfg.Shape.H; l++ {
			cnt := 0
			for _, pos := range lay.Level(l) {
				if state&(1<<uint(pos)) != 0 {
					cnt++
				}
			}
			if cnt >= cfg.ReadThreshold(l) {
				total += prob
				break
			}
		}
	}
	return total, nil
}
