package availability

import (
	"math"
	"testing"
	"testing/quick"

	"trapquorum/internal/trapezoid"
)

const eps = 1e-9

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func fig3Params(t testing.TB) ERCParams {
	t.Helper()
	cfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ERCParams{Config: cfg, N: 15, K: 8}
}

func TestBinomialKnown(t *testing.T) {
	cases := []struct {
		z, m int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {14, 7, 3432},
		{5, 6, 0}, {5, -1, 0}, {-1, 0, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binomial(c.z, c.m); !approx(got, c.want, 1e-6*math.Max(1, c.want)) {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.z, c.m, got, c.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(zRaw, mRaw uint8) bool {
		z := int(zRaw % 40)
		m := int(mRaw%40) % (z + 1)
		return approx(Binomial(z, m), Binomial(z, z-m), 1e-6*Binomial(z, m)+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhiFullRangeIsOne(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		for z := 0; z <= 20; z++ {
			if got := Phi(z, 0, z, p); !approx(got, 1, 1e-9) {
				t.Fatalf("Phi(%d,0,%d,%v) = %v, want 1", z, z, p, got)
			}
		}
	}
}

func TestPhiEmptyRange(t *testing.T) {
	if Phi(5, 3, 2, 0.5) != 0 {
		t.Fatal("Phi with i>j should be 0")
	}
}

func TestPhiClamping(t *testing.T) {
	if got := Phi(5, -3, 99, 0.5); !approx(got, 1, eps) {
		t.Fatalf("clamped full range = %v", got)
	}
}

func TestPhiEdgeProbabilities(t *testing.T) {
	// p = 1: all z nodes up, so Phi counts 1 iff the range includes z.
	if got := Phi(4, 4, 4, 1); !approx(got, 1, eps) {
		t.Fatalf("Phi(4,4,4,1) = %v", got)
	}
	if got := Phi(4, 0, 3, 1); !approx(got, 0, eps) {
		t.Fatalf("Phi(4,0,3,1) = %v", got)
	}
	// p = 0: zero nodes up.
	if got := Phi(4, 0, 0, 0); !approx(got, 1, eps) {
		t.Fatalf("Phi(4,0,0,0) = %v", got)
	}
	if got := Phi(4, 1, 4, 0); !approx(got, 0, eps) {
		t.Fatalf("Phi(4,1,4,0) = %v", got)
	}
}

func TestPhiKnownValue(t *testing.T) {
	// Bin(14, 0.5): P(X >= 8) = 6476/16384.
	want := 6476.0 / 16384.0
	if got := Phi(14, 8, 14, 0.5); !approx(got, want, 1e-12) {
		t.Fatalf("Phi(14,8,14,0.5) = %v, want %v", got, want)
	}
}

func TestPhiTailMonotonicInP(t *testing.T) {
	prev := -1.0
	for p := 0.0; p <= 1.0001; p += 0.05 {
		cur := Phi(9, 5, 9, p)
		if cur+1e-12 < prev {
			t.Fatalf("tail Phi not monotone at p=%v", p)
		}
		prev = cur
	}
}

func TestPhiNegativeZPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Phi(-1, 0, 0, 0.5)
}

func TestWriteEndpoints(t *testing.T) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 2}, 3)
	if got := Write(cfg, 1); !approx(got, 1, eps) {
		t.Fatalf("Write(p=1) = %v", got)
	}
	if got := Write(cfg, 0); !approx(got, 0, eps) {
		t.Fatalf("Write(p=0) = %v", got)
	}
}

func TestWriteMonotonicInP(t *testing.T) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 2}, 3)
	prev := -1.0
	for p := 0.0; p <= 1.0001; p += 0.02 {
		cur := Write(cfg, p)
		if cur+1e-12 < prev {
			t.Fatalf("Write not monotone at p=%v", p)
		}
		prev = cur
	}
}

// TestFig3PaperNumbers pins the quantitative claims of the paper's
// Figure 3 discussion: with the reconstructed parameters, at p = 0.5
// full replication reads are ~75% available and ERC reads ~63%.
func TestFig3PaperNumbers(t *testing.T) {
	e := fig3Params(t)
	fr := ReadFR(e.Config, 0.5)
	if !approx(fr, 0.75, 1e-12) {
		t.Fatalf("ReadFR(0.5) = %v, want exactly 0.75", fr)
	}
	erc, err := ReadERC(e, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// P1 = 0.5*(1 - 0.25*0.5) = 0.4375; P2 = 0.5 * 6476/16384.
	want := 0.4375 + 0.5*6476.0/16384.0
	if !approx(erc, want, 1e-12) {
		t.Fatalf("ReadERC(0.5) = %v, want %v", erc, want)
	}
	if erc < 0.63 || erc > 0.64 {
		t.Fatalf("ReadERC(0.5) = %v, paper quotes ~63%%", erc)
	}
}

// TestFig3HighPConvergence pins the paper's second claim: "there is no
// difference when p >= 0.8".
func TestFig3HighPConvergence(t *testing.T) {
	e := fig3Params(t)
	for _, p := range []float64{0.8, 0.85, 0.9, 0.95, 0.99} {
		fr := ReadFR(e.Config, p)
		erc, err := ReadERC(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(fr - erc); diff > 0.01 {
			t.Fatalf("p=%v: |FR-ERC| = %v, paper claims indistinguishable", p, diff)
		}
	}
}

// TestFig3LowPGap verifies the ordering the figure shows: below
// p ≈ 0.8, full replication reads are strictly more available.
func TestFig3LowPGap(t *testing.T) {
	e := fig3Params(t)
	for _, p := range []float64{0.3, 0.4, 0.5, 0.6} {
		fr := ReadFR(e.Config, p)
		erc, err := ReadERC(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if fr <= erc {
			t.Fatalf("p=%v: FR %v <= ERC %v, expected FR above", p, fr, erc)
		}
	}
}

func TestReadERCPartsSum(t *testing.T) {
	e := fig3Params(t)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		p1, p2, err := ReadERCParts(e, p)
		if err != nil {
			t.Fatal(err)
		}
		total, err := ReadERC(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(p1+p2, total, eps) {
			t.Fatalf("p=%v: parts %v+%v != total %v", p, p1, p2, total)
		}
		if p1 < 0 || p2 < 0 || total > 1+eps {
			t.Fatalf("p=%v: invalid probabilities p1=%v p2=%v", p, p1, p2)
		}
	}
}

func TestERCParamsValidate(t *testing.T) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3) // 8 nodes
	if err := (ERCParams{Config: cfg, N: 15, K: 8}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	if err := (ERCParams{Config: cfg, N: 15, K: 9}).Validate(); err == nil {
		t.Fatal("mismatched Nbnode accepted")
	}
	if err := (ERCParams{Config: cfg, N: 7, K: 0}).Validate(); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := (ERCParams{Config: cfg, N: 5, K: 8}).Validate(); err == nil {
		t.Fatal("n<k accepted")
	}
}

// TestFig4RedundancyOrdering pins Figure 4's message: more redundant
// blocks (larger n−k) means better ERC read availability at fixed p.
func TestFig4RedundancyOrdering(t *testing.T) {
	configs := []struct {
		shape trapezoid.Shape
		w     int
		n, k  int
	}{
		{trapezoid.Shape{A: 2, B: 2, H: 1}, 2, 15, 10}, // n-k+1 = 6
		{trapezoid.Shape{A: 2, B: 3, H: 1}, 3, 15, 8},  // n-k+1 = 8
		{trapezoid.Shape{A: 4, B: 3, H: 1}, 4, 15, 6},  // n-k+1 = 10
		{trapezoid.Shape{A: 1, B: 3, H: 2}, 3, 15, 4},  // n-k+1 = 12
	}
	for _, p := range []float64{0.5, 0.6, 0.7} {
		prev := -1.0
		for _, c := range configs {
			cfg, err := trapezoid.NewConfig(c.shape, c.w)
			if err != nil {
				t.Fatal(err)
			}
			erc, err := ReadERC(ERCParams{Config: cfg, N: c.n, K: c.k}, p)
			if err != nil {
				t.Fatal(err)
			}
			if erc <= prev {
				t.Fatalf("p=%v: availability %v not increasing with n-k (prev %v)", p, erc, prev)
			}
			prev = erc
		}
	}
}

func TestStorageEquations(t *testing.T) {
	// Paper Fig. 5 example: n=15, k=8 → FR uses 8 blocks.
	if got := StorageFR(15, 8); got != 8 {
		t.Fatalf("StorageFR(15,8) = %v, want 8", got)
	}
	if got := StorageERC(15, 8); !approx(got, 15.0/8.0, eps) {
		t.Fatalf("StorageERC(15,8) = %v, want 1.875", got)
	}
	// ERC always at most FR for n >= k >= 1.
	for n := 1; n <= 30; n++ {
		for k := 1; k <= n; k++ {
			if StorageERC(n, k) > StorageFR(n, k)+eps {
				t.Fatalf("ERC storage exceeds FR at n=%d k=%d", n, k)
			}
		}
	}
}

func TestWriteMatchesExactEnumeration(t *testing.T) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	for _, p := range []float64{0.2, 0.5, 0.8, 0.95} {
		exact, err := WriteExact(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := Write(cfg, p); !approx(got, exact, 1e-9) {
			t.Fatalf("p=%v: Write=%v exact=%v", p, got, exact)
		}
	}
}

func TestReadFRMatchesExactEnumeration(t *testing.T) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	for _, p := range []float64{0.2, 0.5, 0.8, 0.95} {
		exact, err := ReadFRExact(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := ReadFR(cfg, p); !approx(got, exact, 1e-9) {
			t.Fatalf("p=%v: ReadFR=%v exact=%v", p, got, exact)
		}
	}
}

// TestReadERCExactLowerBoundsEq13 documents the relationship between
// the paper's equation (13) and the protocol as actually specified:
// the P2 term of eq. 13 skips the version-check requirement when N_i
// is down, so eq. 13 can only over-estimate. The gap must vanish as
// p → 1.
func TestReadERCExactLowerBoundsEq13(t *testing.T) {
	e := fig3Params(t)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		exact, err := ReadERCExact(e, p)
		if err != nil {
			t.Fatal(err)
		}
		eq13, err := ReadERC(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if exact > eq13+1e-9 {
			t.Fatalf("p=%v: exact %v exceeds eq13 %v", p, exact, eq13)
		}
	}
	exactHi, _ := ReadERCExact(e, 0.99)
	eq13Hi, _ := ReadERC(e, 0.99)
	if math.Abs(exactHi-eq13Hi) > 1e-3 {
		t.Fatalf("gap at p=0.99 = %v, should be negligible", math.Abs(exactHi-eq13Hi))
	}
}

func TestReadERCExactEndpoints(t *testing.T) {
	e := fig3Params(t)
	lo, err := ReadERCExact(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lo, 0, eps) {
		t.Fatalf("exact at p=0 = %v", lo)
	}
	hi, err := ReadERCExact(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(hi, 1, eps) {
		t.Fatalf("exact at p=1 = %v", hi)
	}
}

func TestExactValidation(t *testing.T) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if _, err := ReadERCExact(ERCParams{Config: cfg, N: 15, K: 9}, 0.5); err == nil {
		t.Fatal("mismatched params accepted")
	}
}

// TestFig2WriteUnaffectedByW0Level checks the Figure-2 family: for the
// Figure-1 trapezoid, increasing w lowers write availability at every
// p in (0,1).
func TestFig2WriteOrderingInW(t *testing.T) {
	shape := trapezoid.Shape{A: 2, B: 3, H: 2}
	for _, p := range []float64{0.3, 0.5, 0.7, 0.9} {
		prev := 2.0
		for w := 1; w <= 5; w++ {
			cfg, err := trapezoid.NewConfig(shape, w)
			if err != nil {
				t.Fatal(err)
			}
			cur := Write(cfg, p)
			if cur >= prev {
				t.Fatalf("p=%v w=%d: write availability %v not decreasing (prev %v)", p, w, cur, prev)
			}
			prev = cur
		}
	}
}

// TestPaperFig2HighPClaim pins "write availability is not
// significantly impacted ... for usual values of p (p > 0.9)".
func TestPaperFig2HighPClaim(t *testing.T) {
	shape := trapezoid.Shape{A: 2, B: 3, H: 2}
	for _, p := range []float64{0.95, 0.99} {
		lo, hi := 2.0, -1.0
		for w := 1; w <= 3; w++ {
			cfg, _ := trapezoid.NewConfig(shape, w)
			v := Write(cfg, p)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 0.02 {
			t.Fatalf("p=%v: write availability spread %v across w=1..3, paper claims small", p, hi-lo)
		}
	}
}

func BenchmarkReadERC(b *testing.B) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	e := ERCParams{Config: cfg, N: 15, K: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadERC(e, 0.73); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadERCExact(b *testing.B) {
	cfg, _ := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	e := ERCParams{Config: cfg, N: 15, K: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadERCExact(e, 0.73); err != nil {
			b.Fatal(err)
		}
	}
}
