package availability

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trapquorum/internal/trapezoid"
)

// randomERCParams draws a valid (shape, w, n, k) combination.
func randomERCParams(r *rand.Rand) (ERCParams, bool) {
	k := 1 + r.Intn(12)
	parity := 2 + r.Intn(10)
	n := k + parity
	shapes := trapezoid.EnumerateShapes(parity+1, 3)
	if len(shapes) == 0 {
		return ERCParams{}, false
	}
	shape := shapes[r.Intn(len(shapes))]
	w := 1
	if shape.H >= 1 {
		w = 1 + r.Intn(shape.LevelSize(1))
	}
	cfg, err := trapezoid.NewConfig(shape, w)
	if err != nil {
		return ERCParams{}, false
	}
	return ERCParams{Config: cfg, N: n, K: k}, true
}

// TestAvailabilityBoundsProperty checks on random configurations that
// every formula stays a probability, the endpoints are exact, and the
// exact protocol value never exceeds equation (13).
func TestAvailabilityBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e, ok := randomERCParams(r)
		if !ok {
			return true
		}
		// Small enough for the 2^(n-k+1) exact enumeration.
		if e.Config.Shape.NbNodes() > 13 {
			return true
		}
		for _, p := range []float64{0, r.Float64(), 1} {
			w := Write(e.Config, p)
			fr := ReadFR(e.Config, p)
			erc, err := ReadERC(e, p)
			if err != nil {
				return false
			}
			exact, err := ReadERCExact(e, p)
			if err != nil {
				return false
			}
			for _, v := range []float64{w, fr, erc, exact} {
				if v < -1e-12 || v > 1+1e-12 {
					return false
				}
			}
			// eq13 upper-bounds the protocol *except* when r_0 = 1
			// (trapezoids with b ≤ 2, where w_0 = s_0): there the
			// paper's β_0 = max(0, r_0−2) clamp charges level 0 a
			// failure probability although N_i alone satisfies the
			// check, making eq. 13 pessimistic instead.
			if e.Config.ReadThreshold(0) >= 2 && exact > erc+1e-9 {
				return false
			}
			if p == 0 && (w > 1e-12 || erc > 1e-12) {
				return false
			}
			if p == 1 && (w < 1-1e-12 || erc < 1-1e-12 || fr < 1-1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReadGapVanishesTowardPOne checks the correct general form of
// the paper's "no difference at usual p" claim: the FR/ERC read gap
// shrinks as p → 1 and is negligible at p = 0.999 for every
// configuration. (The gap at p = 0.9 is NOT universally small: for
// high-rate codes — k large relative to n−k — the decode term keeps a
// visible penalty, which is exactly Figure 4's message; the paper's
// 0.8 threshold applies to its (15,8) configuration.)
func TestReadGapVanishesTowardPOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e, ok := randomERCParams(r)
		if !ok {
			return true
		}
		// Equation (13) is only well-posed for r_0 ≥ 2: below that
		// its β_0 clamp mis-charges level 0 (see
		// TestAvailabilityBoundsProperty), so the claim under test
		// does not apply.
		if e.Config.ReadThreshold(0) < 2 {
			return true
		}
		gapAt := func(p float64) float64 {
			fr := ReadFR(e.Config, p)
			erc, err := ReadERC(e, p)
			if err != nil {
				return 2 // poison: forces failure below
			}
			diff := fr - erc
			if diff < 0 {
				diff = -diff
			}
			return diff
		}
		if gapAt(0.999) > 0.005 {
			return false
		}
		// Shrinking toward 1 (allow float slack for tiny gaps).
		return gapAt(0.99) <= gapAt(0.9)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestStorageMonotonicityProperty: for fixed n, FR storage decreases
// linearly in k while ERC storage decreases hyperbolically, and the
// ERC saving grows with k.
func TestStorageMonotonicityProperty(t *testing.T) {
	for n := 2; n <= 40; n++ {
		prevFR, prevERC := -1.0, -1.0
		for k := 1; k <= n; k++ {
			fr := StorageFR(n, k)
			erc := StorageERC(n, k)
			if prevFR > 0 && fr >= prevFR {
				t.Fatalf("n=%d k=%d: FR storage not decreasing", n, k)
			}
			if prevERC > 0 && erc >= prevERC {
				t.Fatalf("n=%d k=%d: ERC storage not decreasing", n, k)
			}
			prevFR, prevERC = fr, erc
		}
	}
}
