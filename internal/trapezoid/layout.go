package trapezoid

import "fmt"

// Layout maps abstract trapezoid positions to the levels of a concrete
// shape. Positions are numbered 0..NbNodes()-1 in level order: position
// 0 is the first slot of level 0 (where the ERC instantiation places
// the node holding the original data block), followed by the rest of
// level 0, then level 1, and so on.
type Layout struct {
	cfg    Config
	levels [][]int // levels[l] lists the positions residing at level l
	level  []int   // level[pos] is the level of a position
}

// NewLayout materialises the position/level mapping of a configuration.
func NewLayout(cfg Config) (*Layout, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lay := &Layout{
		cfg:    cfg,
		levels: make([][]int, cfg.Shape.Levels()),
		level:  make([]int, cfg.Shape.NbNodes()),
	}
	pos := 0
	for l := 0; l <= cfg.Shape.H; l++ {
		size := cfg.Shape.LevelSize(l)
		lay.levels[l] = make([]int, size)
		for i := 0; i < size; i++ {
			lay.levels[l][i] = pos
			lay.level[pos] = l
			pos++
		}
	}
	return lay, nil
}

// Config returns the configuration the layout was built from.
func (lay *Layout) Config() Config { return lay.cfg }

// NbNodes returns the total number of positions.
func (lay *Layout) NbNodes() int { return len(lay.level) }

// Level returns the positions residing at level l, in order. The
// returned slice must not be modified.
func (lay *Layout) Level(l int) []int {
	if l < 0 || l >= len(lay.levels) {
		panic(fmt.Sprintf("trapezoid: level %d out of [0,%d]", l, len(lay.levels)-1))
	}
	return lay.levels[l]
}

// LevelOf returns the level that position pos resides at.
func (lay *Layout) LevelOf(pos int) int {
	if pos < 0 || pos >= len(lay.level) {
		panic(fmt.Sprintf("trapezoid: position %d out of [0,%d)", pos, len(lay.level)))
	}
	return lay.level[pos]
}

// WriteQuorum greedily assembles a write quorum from the available
// positions: the first w_l available positions of each level. It
// returns the chosen positions and true, or nil and false when some
// level has fewer than w_l positions available — exactly the failure
// condition of Algorithm 1 lines 35–37.
func (lay *Layout) WriteQuorum(available func(pos int) bool) ([]int, bool) {
	var quorum []int
	for l := 0; l <= lay.cfg.Shape.H; l++ {
		picked := 0
		for _, pos := range lay.levels[l] {
			if picked == lay.cfg.W[l] {
				break
			}
			if available(pos) {
				quorum = append(quorum, pos)
				picked++
			}
		}
		if picked < lay.cfg.W[l] {
			return nil, false
		}
	}
	return quorum, true
}

// ReadQuorumAtLevel assembles a version-check quorum at level l: the
// first r_l = s_l − w_l + 1 available positions of that level. It
// returns nil, false when the level cannot muster r_l nodes.
func (lay *Layout) ReadQuorumAtLevel(l int, available func(pos int) bool) ([]int, bool) {
	need := lay.cfg.ReadThreshold(l)
	var quorum []int
	for _, pos := range lay.levels[l] {
		if len(quorum) == need {
			break
		}
		if available(pos) {
			quorum = append(quorum, pos)
		}
	}
	if len(quorum) < need {
		return nil, false
	}
	return quorum, true
}

// ReadQuorum scans levels 0..h in order (as Algorithm 2 does) and
// returns the first level that can muster its read threshold, along
// with the chosen positions. ok is false when no level can.
func (lay *Layout) ReadQuorum(available func(pos int) bool) (level int, quorum []int, ok bool) {
	for l := 0; l <= lay.cfg.Shape.H; l++ {
		if q, got := lay.ReadQuorumAtLevel(l, available); got {
			return l, q, true
		}
	}
	return 0, nil, false
}

// AllWriteQuorums enumerates every minimal write quorum (choosing
// exactly w_l positions at each level). Intended for property tests on
// small configurations; the count multiplies C(s_l, w_l) across levels.
func (lay *Layout) AllWriteQuorums() [][]int {
	perLevel := make([][][]int, lay.cfg.Shape.Levels())
	for l := range perLevel {
		perLevel[l] = combinations(lay.levels[l], lay.cfg.W[l])
	}
	var out [][]int
	var build func(l int, acc []int)
	build = func(l int, acc []int) {
		if l == len(perLevel) {
			out = append(out, append([]int(nil), acc...))
			return
		}
		for _, choice := range perLevel[l] {
			build(l+1, append(acc, choice...))
		}
	}
	build(0, nil)
	return out
}

// AllReadQuorums enumerates every minimal read quorum: for each level
// l, every choice of r_l positions from that level.
func (lay *Layout) AllReadQuorums() [][]int {
	var out [][]int
	for l := 0; l <= lay.cfg.Shape.H; l++ {
		out = append(out, combinations(lay.levels[l], lay.cfg.ReadThreshold(l))...)
	}
	return out
}

// combinations returns all size-r subsets of items, preserving order.
func combinations(items []int, r int) [][]int {
	if r > len(items) || r < 0 {
		return nil
	}
	var out [][]int
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	for {
		pick := make([]int, r)
		for i, j := range idx {
			pick[i] = items[j]
		}
		out = append(out, pick)
		i := r - 1
		for i >= 0 && idx[i] == len(items)-r+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}

// EnumerateShapes lists every shape (a, b, h) whose trapezoid holds
// exactly nbNodes positions, with h ≤ maxH. Used by the design-space
// sweep to find trapezoids matching a given n−k+1.
func EnumerateShapes(nbNodes, maxH int) []Shape {
	var out []Shape
	for h := 0; h <= maxH; h++ {
		levels := h + 1
		// Σ (a·l + b) = a·h(h+1)/2 + b·(h+1) = nbNodes
		tri := h * (h + 1) / 2
		for a := 0; ; a++ {
			rem := nbNodes - a*tri
			if rem < levels { // b would drop below 1
				break
			}
			if rem%levels == 0 {
				b := rem / levels
				s := Shape{A: a, B: b, H: h}
				if s.Validate() == nil && s.NbNodes() == nbNodes {
					out = append(out, s)
				}
			}
			if tri == 0 { // h = 0: only a = 0 distinguishes shapes
				break
			}
		}
	}
	return out
}
