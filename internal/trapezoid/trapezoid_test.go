package trapezoid

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustConfig(t testing.TB, shape Shape, w int) Config {
	t.Helper()
	cfg, err := NewConfig(shape, w)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func mustLayout(t testing.TB, cfg Config) *Layout {
	t.Helper()
	lay, err := NewLayout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestShapeValidate(t *testing.T) {
	cases := []struct {
		s  Shape
		ok bool
	}{
		{Shape{A: 2, B: 3, H: 2}, true},
		{Shape{A: 0, B: 1, H: 0}, true},
		{Shape{A: 0, B: 5, H: 3}, true},
		{Shape{A: -1, B: 3, H: 2}, false},
		{Shape{A: 2, B: 0, H: 2}, false},
		{Shape{A: 2, B: 3, H: -1}, false},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%v: err=%v want ok=%v", c.s, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrBadShape) {
			t.Errorf("%v: err not ErrBadShape", c.s)
		}
	}
}

// TestPaperFigure1 pins the example of the paper's Figure 1:
// s_l = 2l+3 (a=2, b=3, h=2) yields levels of 3, 5, 7 nodes and
// Nbnode = 15 = n−k+1.
func TestPaperFigure1(t *testing.T) {
	s := Shape{A: 2, B: 3, H: 2}
	if got := s.NbNodes(); got != 15 {
		t.Fatalf("NbNodes = %d, want 15", got)
	}
	for l, want := range []int{3, 5, 7} {
		if got := s.LevelSize(l); got != want {
			t.Fatalf("s_%d = %d, want %d", l, got, want)
		}
	}
	if s.Level0Majority() != 2 {
		t.Fatalf("level-0 majority = %d, want 2", s.Level0Majority())
	}
	if s.Levels() != 3 {
		t.Fatalf("levels = %d, want 3", s.Levels())
	}
}

func TestLevelSizeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Shape{A: 1, B: 1, H: 1}.LevelSize(2)
}

func TestNewConfigEquation16(t *testing.T) {
	cfg := mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3)
	if cfg.W[0] != 2 {
		t.Fatalf("w_0 = %d, want floor(3/2)+1 = 2", cfg.W[0])
	}
	if cfg.W[1] != 3 || cfg.W[2] != 3 {
		t.Fatalf("W = %v, want uniform 3 above level 0", cfg.W)
	}
	if got := cfg.WriteQuorumSize(); got != 8 {
		t.Fatalf("|WQ| = %d, want 8", got)
	}
}

func TestNewConfigRejectsBadW(t *testing.T) {
	if _, err := NewConfig(Shape{A: 2, B: 3, H: 2}, 0); !errors.Is(err, ErrBadQuorum) {
		t.Fatalf("w=0: err = %v", err)
	}
	// s_1 = 5 is the binding constraint for w across levels 1..h.
	if _, err := NewConfig(Shape{A: 2, B: 3, H: 2}, 6); !errors.Is(err, ErrBadQuorum) {
		t.Fatalf("w=6: err = %v", err)
	}
	if _, err := NewConfig(Shape{A: 2, B: 3, H: 2}, 5); err != nil {
		t.Fatalf("w=5 should be valid (s_1=5): %v", err)
	}
}

func TestNewConfigLevels(t *testing.T) {
	cfg, err := NewConfigLevels(Shape{A: 2, B: 3, H: 2}, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.W[0] != 2 || cfg.W[1] != 4 || cfg.W[2] != 2 {
		t.Fatalf("W = %v", cfg.W)
	}
	if _, err := NewConfigLevels(Shape{A: 2, B: 3, H: 2}, []int{4}); !errors.Is(err, ErrBadQuorum) {
		t.Fatalf("short w accepted: %v", err)
	}
	if _, err := NewConfigLevels(Shape{A: 2, B: 3, H: 2}, []int{4, 8}); !errors.Is(err, ErrBadQuorum) {
		t.Fatalf("w_2 > s_2 accepted: %v", err)
	}
}

func TestValidateRejectsTamperedW0(t *testing.T) {
	cfg := mustConfig(t, Shape{A: 2, B: 3, H: 1}, 2)
	cfg.W[0] = 1 // below majority: two write quorums could miss each other
	if err := cfg.Validate(); !errors.Is(err, ErrBadQuorum) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadThreshold(t *testing.T) {
	cfg := mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3)
	// r_l = s_l - w_l + 1: level 0: 3-2+1=2, level 1: 5-3+1=3, level 2: 7-3+1=5.
	for l, want := range []int{2, 3, 5} {
		if got := cfg.ReadThreshold(l); got != want {
			t.Fatalf("r_%d = %d, want %d", l, got, want)
		}
	}
	if got := cfg.MinReadQuorumSize(); got != 2 {
		t.Fatalf("min read quorum = %d, want 2", got)
	}
}

func TestStringRendering(t *testing.T) {
	cfg := mustConfig(t, Shape{A: 2, B: 3, H: 1}, 2)
	if s := cfg.String(); !strings.Contains(s, "a=2 b=3 h=1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestLayoutPositions(t *testing.T) {
	lay := mustLayout(t, mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3))
	if lay.NbNodes() != 15 {
		t.Fatalf("NbNodes = %d", lay.NbNodes())
	}
	if got := lay.Level(0); len(got) != 3 || got[0] != 0 {
		t.Fatalf("level 0 = %v", got)
	}
	if got := lay.Level(2); len(got) != 7 || got[6] != 14 {
		t.Fatalf("level 2 = %v", got)
	}
	for pos := 0; pos < 15; pos++ {
		want := 0
		switch {
		case pos >= 8:
			want = 2
		case pos >= 3:
			want = 1
		}
		if lay.LevelOf(pos) != want {
			t.Fatalf("LevelOf(%d) = %d, want %d", pos, lay.LevelOf(pos), want)
		}
	}
}

func TestLayoutPanics(t *testing.T) {
	lay := mustLayout(t, mustConfig(t, Shape{A: 1, B: 1, H: 1}, 1))
	for _, f := range []func(){
		func() { lay.Level(-1) },
		func() { lay.Level(2) },
		func() { lay.LevelOf(-1) },
		func() { lay.LevelOf(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestNewLayoutRejectsInvalid(t *testing.T) {
	if _, err := NewLayout(Config{Shape: Shape{A: -1, B: 1, H: 0}, W: []int{1}}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func allUp(int) bool { return true }

func TestWriteQuorumAllUp(t *testing.T) {
	cfg := mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3)
	lay := mustLayout(t, cfg)
	q, ok := lay.WriteQuorum(allUp)
	if !ok {
		t.Fatal("quorum not found with all nodes up")
	}
	if len(q) != cfg.WriteQuorumSize() {
		t.Fatalf("|q| = %d, want %d", len(q), cfg.WriteQuorumSize())
	}
	counts := map[int]int{}
	for _, pos := range q {
		counts[lay.LevelOf(pos)]++
	}
	for l, w := range cfg.W {
		if counts[l] != w {
			t.Fatalf("level %d has %d picks, want %d", l, counts[l], w)
		}
	}
}

func TestWriteQuorumFailsWhenLevelStarved(t *testing.T) {
	lay := mustLayout(t, mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3))
	// Kill all but 2 nodes of level 1 (positions 3..7): w_1 = 3 unreachable.
	down := map[int]bool{3: true, 4: true, 5: true}
	if _, ok := lay.WriteQuorum(func(p int) bool { return !down[p] }); ok {
		t.Fatal("quorum assembled despite starved level")
	}
}

func TestReadQuorumPrefersLowestLevel(t *testing.T) {
	lay := mustLayout(t, mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3))
	level, q, ok := lay.ReadQuorum(allUp)
	if !ok || level != 0 {
		t.Fatalf("level = %d ok=%v, want level 0", level, ok)
	}
	if len(q) != 2 { // r_0 = 2
		t.Fatalf("|q| = %d, want 2", len(q))
	}
}

func TestReadQuorumFallsThroughLevels(t *testing.T) {
	lay := mustLayout(t, mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3))
	// Level 0 has 3 nodes, r_0 = 2; kill 2 of them.
	down := map[int]bool{0: true, 1: true}
	level, q, ok := lay.ReadQuorum(func(p int) bool { return !down[p] })
	if !ok {
		t.Fatal("no quorum found")
	}
	if level != 1 {
		t.Fatalf("level = %d, want 1", level)
	}
	if len(q) != 3 { // r_1 = 3
		t.Fatalf("|q| = %d", len(q))
	}
}

func TestReadQuorumTotalFailure(t *testing.T) {
	lay := mustLayout(t, mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3))
	if _, _, ok := lay.ReadQuorum(func(int) bool { return false }); ok {
		t.Fatal("quorum found with all nodes down")
	}
}

// TestWriteQuorumIntersection is the protocol's safety core
// (equation 3): every pair of write quorums shares at least one node,
// and the shared node can always be found at level 0.
func TestWriteQuorumIntersection(t *testing.T) {
	for _, cfg := range []Config{
		mustConfig(t, Shape{A: 2, B: 3, H: 1}, 3),
		mustConfig(t, Shape{A: 1, B: 1, H: 2}, 1),
		mustConfig(t, Shape{A: 0, B: 5, H: 1}, 2),
		mustConfig(t, Shape{A: 3, B: 1, H: 1}, 2),
	} {
		lay := mustLayout(t, cfg)
		quorums := lay.AllWriteQuorums()
		if len(quorums) < 2 {
			t.Fatalf("%v: only %d quorums", cfg, len(quorums))
		}
		for x := 0; x < len(quorums); x++ {
			for y := x; y < len(quorums); y++ {
				if !intersectAtLevel(lay, quorums[x], quorums[y], 0) {
					t.Fatalf("%v: write quorums %v and %v do not intersect at level 0",
						cfg, quorums[x], quorums[y])
				}
			}
		}
	}
}

// TestReadWriteQuorumIntersection checks equation 2: every read quorum
// intersects every write quorum.
func TestReadWriteQuorumIntersection(t *testing.T) {
	for _, cfg := range []Config{
		mustConfig(t, Shape{A: 2, B: 3, H: 1}, 3),
		mustConfig(t, Shape{A: 1, B: 2, H: 2}, 2),
		mustConfig(t, Shape{A: 0, B: 3, H: 2}, 1),
	} {
		lay := mustLayout(t, cfg)
		writes := lay.AllWriteQuorums()
		reads := lay.AllReadQuorums()
		for _, rq := range reads {
			for _, wq := range writes {
				if !intersects(rq, wq) {
					t.Fatalf("%v: RQ %v misses WQ %v", cfg, rq, wq)
				}
			}
		}
	}
}

func intersects(a, b []int) bool {
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if set[y] {
			return true
		}
	}
	return false
}

func intersectAtLevel(lay *Layout, a, b []int, level int) bool {
	set := make(map[int]bool)
	for _, x := range a {
		if lay.LevelOf(x) == level {
			set[x] = true
		}
	}
	for _, y := range b {
		if lay.LevelOf(y) == level && set[y] {
			return true
		}
	}
	return false
}

// TestGreedyQuorumIntersectionRandom drives the greedy pickers under
// random availability and checks that whenever both a write and a read
// quorum can be assembled, they intersect (the live-protocol analogue
// of equations 2 and 3).
func TestGreedyQuorumIntersectionRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cfg := mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3)
	lay := mustLayout(t, cfg)
	n := lay.NbNodes()
	for trial := 0; trial < 2000; trial++ {
		up := make([]bool, n)
		for i := range up {
			up[i] = r.Float64() < 0.7
		}
		avail := func(p int) bool { return up[p] }
		wq1, ok1 := lay.WriteQuorum(avail)
		// A second, different availability mask for the second writer.
		up2 := make([]bool, n)
		for i := range up2 {
			up2[i] = r.Float64() < 0.7
		}
		wq2, ok2 := lay.WriteQuorum(func(p int) bool { return up2[p] })
		if ok1 && ok2 && !intersects(wq1, wq2) {
			t.Fatalf("trial %d: write quorums %v and %v disjoint", trial, wq1, wq2)
		}
		if _, rq, okR := lay.ReadQuorum(avail); ok1 && okR {
			// Same level scan order means rq comes from some level l;
			// the write quorum has w_l there and rq has s_l-w_l+1.
			if !intersects(rq, wq1) {
				t.Fatalf("trial %d: read quorum %v misses write quorum %v", trial, rq, wq1)
			}
		}
	}
}

func TestAllWriteQuorumsCount(t *testing.T) {
	// Shape a=1,b=1,h=1: levels of 1 and 2 nodes; w = [1,1].
	// C(1,1) * C(2,1) = 2 quorums.
	lay := mustLayout(t, mustConfig(t, Shape{A: 1, B: 1, H: 1}, 1))
	if got := len(lay.AllWriteQuorums()); got != 2 {
		t.Fatalf("quorum count = %d, want 2", got)
	}
	// Figure-1 shape: C(3,2)*C(5,3)*C(7,3) = 3*10*35 = 1050.
	lay2 := mustLayout(t, mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3))
	if got := len(lay2.AllWriteQuorums()); got != 1050 {
		t.Fatalf("quorum count = %d, want 1050", got)
	}
}

func TestAllReadQuorumsCount(t *testing.T) {
	// Figure-1 shape, w=3: r = [2,3,5] → C(3,2)+C(5,3)+C(7,5) = 3+10+21 = 34.
	lay := mustLayout(t, mustConfig(t, Shape{A: 2, B: 3, H: 2}, 3))
	if got := len(lay.AllReadQuorums()); got != 34 {
		t.Fatalf("read quorum count = %d, want 34", got)
	}
}

func TestEnumerateShapes(t *testing.T) {
	shapes := EnumerateShapes(15, 4)
	if len(shapes) == 0 {
		t.Fatal("no shapes found for 15 nodes")
	}
	seen := map[string]bool{}
	for _, s := range shapes {
		if s.NbNodes() != 15 {
			t.Fatalf("shape %v has %d nodes", s, s.NbNodes())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("shape %v invalid: %v", s, err)
		}
		if seen[s.String()] {
			t.Fatalf("duplicate shape %v", s)
		}
		seen[s.String()] = true
	}
	// The Figure-1 shape must be among them.
	if !seen["a=2 b=3 h=2"] {
		t.Fatal("EnumerateShapes(15, 4) missing a=2 b=3 h=2")
	}
	// h=0 single-level shape (plain majority over 15 nodes).
	if !seen["a=0 b=15 h=0"] {
		t.Fatal("EnumerateShapes missing the flat shape")
	}
}

func TestEnumerateShapesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nb := 1 + r.Intn(40)
		for _, s := range EnumerateShapes(nb, 5) {
			if s.NbNodes() != nb || s.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteQuorum(b *testing.B) {
	cfg, _ := NewConfig(Shape{A: 2, B: 3, H: 2}, 3)
	lay, _ := NewLayout(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := lay.WriteQuorum(allUp); !ok {
			b.Fatal("no quorum")
		}
	}
}
