// Package trapezoid implements the logical trapezoid topology and
// quorum rules of the trapezoidal protocol (paper §III-B-2).
//
// Nodes are arranged on h+1 levels; level l (0 ≤ l ≤ h) holds
// s_l = a·l + b nodes, with a ≥ 0 and b ≥ 1. A write quorum takes
// w_0 = ⌊b/2⌋+1 nodes at level 0 — an absolute majority, which forces
// any two write quorums to intersect there (equation 3) — plus w_l
// arbitrary nodes at each higher level. A read quorum checks versions
// on r_l = s_l − w_l + 1 nodes of some single level l, enough to be
// guaranteed to overlap every write quorum at that level (equation 2).
//
// In the ERC instantiation, the trapezoid for data block b_i organises
// the node N_i holding the original block (always placed at level 0,
// position 0) together with the n−k parity nodes, so the total node
// count is Nbnode = n−k+1 (equation 5).
package trapezoid

import (
	"errors"
	"fmt"
)

// ErrBadShape reports invalid (a, b, h) trapezoid parameters.
var ErrBadShape = errors.New("trapezoid: invalid shape")

// ErrBadQuorum reports write-quorum sizes violating 1 ≤ w_l ≤ s_l or
// the mandatory level-0 majority.
var ErrBadQuorum = errors.New("trapezoid: invalid write quorum sizes")

// Shape is the geometric parameter triple of a trapezoid.
type Shape struct {
	// A is the per-level increment of the level width (a ≥ 0).
	A int
	// B is the width of level 0 (b ≥ 1).
	B int
	// H is the index of the last level; the trapezoid has H+1 levels.
	H int
}

// Validate checks a ≥ 0, b ≥ 1, h ≥ 0.
func (s Shape) Validate() error {
	if s.A < 0 || s.B < 1 || s.H < 0 {
		return fmt.Errorf("%w: a=%d b=%d h=%d (need a>=0, b>=1, h>=0)", ErrBadShape, s.A, s.B, s.H)
	}
	return nil
}

// LevelSize returns s_l = a·l + b. It panics on an out-of-range level.
func (s Shape) LevelSize(l int) int {
	if l < 0 || l > s.H {
		panic(fmt.Sprintf("trapezoid: level %d out of [0,%d]", l, s.H))
	}
	return s.A*l + s.B
}

// Levels returns the number of levels, h+1.
func (s Shape) Levels() int { return s.H + 1 }

// NbNodes returns the total number of nodes Σ s_l (equation 4).
func (s Shape) NbNodes() int {
	total := 0
	for l := 0; l <= s.H; l++ {
		total += s.LevelSize(l)
	}
	return total
}

// Level0Majority returns ⌊b/2⌋+1, the mandatory write quorum at level 0.
func (s Shape) Level0Majority() int { return s.B/2 + 1 }

// String renders the shape as "a=.. b=.. h=..".
func (s Shape) String() string {
	return fmt.Sprintf("a=%d b=%d h=%d", s.A, s.B, s.H)
}

// Config is a fully parameterised trapezoid quorum system: a shape plus
// the per-level write-quorum sizes.
type Config struct {
	Shape Shape
	// W[l] is the number of successful node writes required at level l.
	// W[0] is forced to the level-0 majority by the constructors.
	W []int
}

// NewConfig builds a Config with the paper's equation (16) quorum
// profile: w_0 = ⌊b/2⌋+1 and w_l = w for every 1 ≤ l ≤ h. w is
// ignored when h = 0.
func NewConfig(shape Shape, w int) (Config, error) {
	if err := shape.Validate(); err != nil {
		return Config{}, err
	}
	ws := make([]int, shape.Levels())
	ws[0] = shape.Level0Majority()
	for l := 1; l <= shape.H; l++ {
		ws[l] = w
	}
	cfg := Config{Shape: shape, W: ws}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// NewConfigLevels builds a Config with explicit per-level write quorum
// sizes for levels 1..h. Level 0 is always the mandatory majority and
// must not be included in w.
func NewConfigLevels(shape Shape, w []int) (Config, error) {
	if err := shape.Validate(); err != nil {
		return Config{}, err
	}
	if len(w) != shape.H {
		return Config{}, fmt.Errorf("%w: got %d sizes for levels 1..%d", ErrBadQuorum, len(w), shape.H)
	}
	ws := make([]int, shape.Levels())
	ws[0] = shape.Level0Majority()
	copy(ws[1:], w)
	cfg := Config{Shape: shape, W: ws}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the shape, the level-0 majority and 1 ≤ w_l ≤ s_l.
func (c Config) Validate() error {
	if err := c.Shape.Validate(); err != nil {
		return err
	}
	if len(c.W) != c.Shape.Levels() {
		return fmt.Errorf("%w: %d sizes for %d levels", ErrBadQuorum, len(c.W), c.Shape.Levels())
	}
	if c.W[0] != c.Shape.Level0Majority() {
		return fmt.Errorf("%w: w_0=%d, must be the level-0 majority %d", ErrBadQuorum, c.W[0], c.Shape.Level0Majority())
	}
	for l := 1; l <= c.Shape.H; l++ {
		if c.W[l] < 1 || c.W[l] > c.Shape.LevelSize(l) {
			return fmt.Errorf("%w: w_%d=%d outside [1,%d]", ErrBadQuorum, l, c.W[l], c.Shape.LevelSize(l))
		}
	}
	return nil
}

// WriteQuorumSize returns |WQ| = Σ w_l (equation 6).
func (c Config) WriteQuorumSize() int {
	total := 0
	for _, w := range c.W {
		total += w
	}
	return total
}

// ReadThreshold returns r_l = s_l − w_l + 1, the number of nodes whose
// versions must be collected at level l to be certain of seeing the
// latest version.
func (c Config) ReadThreshold(l int) int {
	return c.Shape.LevelSize(l) - c.W[l] + 1
}

// MinReadQuorumSize returns the smallest r_l over all levels: the
// cheapest possible version check.
func (c Config) MinReadQuorumSize() int {
	best := c.ReadThreshold(0)
	for l := 1; l <= c.Shape.H; l++ {
		if r := c.ReadThreshold(l); r < best {
			best = r
		}
	}
	return best
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("trapezoid{%s w=%v}", c.Shape, c.W)
}
