package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"trapquorum/client"
)

func requestFixtures() []Request {
	return []Request{
		{Op: OpPing},
		{Op: OpReadChunk, ID: client.ChunkID{Stripe: 7, Shard: 2}},
		{Op: OpReadVersions, ID: client.ChunkID{Stripe: 1 << 60, Shard: 14}},
		{Op: OpPutChunk, ID: client.ChunkID{Stripe: 3}, Versions: []uint64{1, 2, 3}, Data: []byte{9, 8, 7}},
		{Op: OpPutChunkIfFresher, ID: client.ChunkID{Stripe: 3, Shard: 9}, Versions: []uint64{client.NoVersion}, Data: []byte{0}},
		{Op: OpCompareAndPut, ID: client.ChunkID{Stripe: 5, Shard: 1}, Slot: 0, Expect: 4, Next: 5, Data: bytes.Repeat([]byte{0xaa}, 4096)},
		{Op: OpCompareAndAdd, ID: client.ChunkID{Stripe: 5, Shard: 12}, Slot: 7, Expect: 1, Next: 2, Data: []byte{1, 2}},
		{Op: OpDeleteChunk, ID: client.ChunkID{Stripe: 9, Shard: 0}},
		{Op: OpHasChunk, ID: client.ChunkID{Stripe: 2, Shard: 3}},
		{Op: OpWipe},
		// Cross-checksum metadata: writes distributing BlockSum records.
		{Op: OpPutChunk, ID: client.ChunkID{Stripe: 4, Shard: 10}, Versions: []uint64{7, 3}, Data: []byte{1, 2},
			Sums: []client.BlockSum{{Version: 7, Sum: 0xdeadbeefcafef00d}, {Version: 3, Sum: 1}}},
		{Op: OpCompareAndAdd, ID: client.ChunkID{Stripe: 6, Shard: 13}, Slot: 2, Expect: 3, Next: 4, Data: []byte{5},
			Sums: []client.BlockSum{{Version: 4, Sum: 42}}},
		// Epoch-tagged traffic: ordinary operations stamped with the
		// coordinator's placement epoch, plus the epoch-state ops
		// themselves (OpEpochSet rides installed in Next, retired in
		// Expect, the placement blob in Data).
		{Op: OpReadChunk, ID: client.ChunkID{Stripe: 11, Shard: 4}, Epoch: 3},
		{Op: OpCompareAndPut, ID: client.ChunkID{Stripe: 11, Shard: 4}, Slot: 1, Expect: 8, Next: 9,
			Epoch: 1 << 40, Data: []byte{6, 6, 6}},
		{Op: OpEpochGet},
		{Op: OpEpochSet, Expect: 4, Next: 5, Data: []byte("placement-map-blob")},
	}
}

func responseFixtures() []Response {
	return []Response{
		{Status: StatusOK},
		{Status: StatusOK, Flag: true},
		{Status: StatusOK, Versions: []uint64{1, 2, 3}, Data: []byte{1, 2, 3, 4}},
		{Status: StatusNotFound, Detail: "chunk 1/2 on node 3"},
		{Status: StatusVersionMismatch, Detail: "slot 0 holds 9, expected 8"},
		{Status: StatusBadRequest, Detail: "version slot 9 of 3"},
		{Status: StatusInternal, Detail: "disk on fire"},
		{Status: StatusOK, Versions: []uint64{client.NoVersion}, Data: bytes.Repeat([]byte{7}, 4096)},
		// Cross-checksum metadata: a read answering with the node's record.
		{Status: StatusOK, Versions: []uint64{9, 9}, Data: []byte{3},
			Sums: []client.BlockSum{{Version: 9, Sum: 0x1122334455667788}, {Version: 9, Sum: 0}}},
		{Status: StatusCorrupt, Detail: "chunk 1/2 quarantined: crc mismatch"},
		{Status: StatusEpochStale, Detail: "epoch 2 retired (installed 3)"},
		// OpEpochGet answer: [installed, retired] in the version vector,
		// placement blob in Data.
		{Status: StatusOK, Versions: []uint64{5, 4}, Data: []byte("placement-map-blob")},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range requestFixtures() {
		payload := AppendRequest(nil, &req)
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		// Normalise the nil-vs-empty distinction the codec does not
		// preserve.
		if len(got.Data) == 0 {
			got.Data = nil
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("%s round trip:\n in: %+v\nout: %+v", req.Op, req, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for i, resp := range responseFixtures() {
		payload := AppendResponse(nil, &resp)
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		if len(got.Data) == 0 {
			got.Data = nil
		}
		if !reflect.DeepEqual(resp, got) {
			t.Fatalf("fixture %d round trip:\n in: %+v\nout: %+v", i, resp, got)
		}
	}
}

// TestTruncatedRequestsRejected drops bytes off the tail of every
// valid encoding: every prefix must be rejected, never mis-parsed.
func TestTruncatedRequestsRejected(t *testing.T) {
	for _, req := range requestFixtures() {
		payload := AppendRequest(nil, &req)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeRequest(payload[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes accepted", req.Op, cut, len(payload))
			}
		}
	}
}

func TestTruncatedResponsesRejected(t *testing.T) {
	for i, resp := range responseFixtures() {
		payload := AppendResponse(nil, &resp)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeResponse(payload[:cut]); err == nil {
				t.Fatalf("fixture %d: truncation to %d/%d bytes accepted", i, cut, len(payload))
			}
		}
	}
}

// TestHugeDeclaredVersionCountRejectedWithoutAllocation feeds a header
// declaring ~500M versions backed by no bytes: the decoder must fail
// on the bounds check before allocating the slice.
func TestHugeDeclaredVersionCountRejectedWithoutAllocation(t *testing.T) {
	req := Request{Op: OpPutChunk, Versions: []uint64{1}, Data: []byte{1}}
	payload := AppendRequest(nil, &req)
	payload[41] = 0x1f // nver high byte: declare 0x1f000001 versions
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeRequest(payload); err == nil {
			t.Fatal("oversized version count accepted")
		}
	})
	// A handful of small allocations build the error; the point is no
	// half-gigabyte versions slice.
	if allocs > 8 {
		t.Fatalf("decode of hostile payload allocated %.0f times", allocs)
	}
}

func TestUnknownOpAndStatusRejected(t *testing.T) {
	req := Request{Op: OpPing}
	payload := AppendRequest(nil, &req)
	payload[0] = byte(opMax)
	if _, err := DecodeRequest(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	payload[0] = 0
	if _, err := DecodeRequest(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	resp := Response{Status: StatusOK}
	rp := AppendResponse(nil, &resp)
	rp[0] = byte(statusMax)
	if _, err := DecodeResponse(rp); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

// TestReplaySafetyClassification pins which operations a transport
// may replay on an ambiguous connection: only the read-only ops and
// the version-guarded install — every other mutation could roll back
// a concurrent writer's update or mis-report its own applied first
// copy.
func TestReplaySafetyClassification(t *testing.T) {
	safe := map[Op]bool{
		OpPing: true, OpReadChunk: true, OpReadVersions: true,
		OpHasChunk: true, OpPutChunkIfFresher: true,
		// Epoch state is a pair of monotone watermarks: reading it is
		// trivially safe and re-installing it is idempotent.
		OpEpochGet: true, OpEpochSet: true,
	}
	for op := Op(1); op < opMax; op++ {
		if got, want := op.ReplaySafe(), safe[op]; got != want {
			t.Fatalf("%s.ReplaySafe() = %v, want %v", op, got, want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xab}, 4096)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %v, want %v", got, want)
		}
		scratch = got[:0]
	}
	if _, err := ReadFrame(&buf, nil, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("err = %v, want clean EOF", err)
	}
}

// TestOversizedFrameRejectedBeforeAllocation writes a frame header
// declaring 1 GiB and asserts the reader refuses it without trying to
// allocate the payload.
func TestOversizedFrameRejectedBeforeAllocation(t *testing.T) {
	hdr := []byte{0x40, 0, 0, 0} // 1 GiB
	r := bytes.NewReader(hdr)
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(hdr)
		if _, err := ReadFrame(r, nil, DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v", err)
		}
	})
	// A handful of small allocations build the error; the point is no
	// 1 GiB payload buffer.
	if allocs > 8 {
		t.Fatalf("oversized frame header allocated %.0f times", allocs)
	}
}

func TestTruncatedFrameSurfaces(t *testing.T) {
	// Header promises 10 bytes, stream has 3.
	raw := []byte{0, 0, 0, 10, 1, 2, 3}
	if _, err := ReadFrame(bytes.NewReader(raw), nil, DefaultMaxFrame); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Torn header.
	if _, err := ReadFrame(bytes.NewReader(raw[:2]), nil, DefaultMaxFrame); err == nil {
		t.Fatal("torn header accepted")
	}
}

func TestStatusErrTaxonomy(t *testing.T) {
	cases := []struct {
		status Status
		want   error
	}{
		{StatusNotFound, client.ErrNotFound},
		{StatusVersionMismatch, client.ErrVersionMismatch},
		{StatusBadRequest, client.ErrBadRequest},
		{StatusOverloaded, client.ErrOverloaded},
		{StatusQuotaExceeded, client.ErrQuotaExceeded},
		{StatusCorrupt, client.ErrCorrupt},
		{StatusEpochStale, client.ErrEpochStale},
	}
	for _, c := range cases {
		if err := c.status.Err("detail"); !errors.Is(err, c.want) {
			t.Fatalf("status %d → %v, want %v", c.status, err, c.want)
		}
		if got := StatusOf(c.want); got != c.status {
			t.Fatalf("StatusOf(%v) = %d, want %d", c.want, got, c.status)
		}
	}
	if err := StatusOK.Err(""); err != nil {
		t.Fatalf("StatusOK err = %v", err)
	}
	if StatusOf(nil) != StatusOK {
		t.Fatal("StatusOf(nil) != StatusOK")
	}
	if err := StatusInternal.Err("disk on fire"); err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("internal err = %v", err)
	}
	if StatusOf(errors.New("weird")) != StatusInternal {
		t.Fatal("unclassified error must map to StatusInternal")
	}
}

// TestRemoteErrorSurvivesRoundTrip: a node-side sentinel error encoded
// into a response and decoded on the client side still satisfies
// errors.Is against the client taxonomy.
func TestRemoteErrorSurvivesRoundTrip(t *testing.T) {
	nodeErr := client.ErrVersionMismatch
	resp := Response{Status: StatusOf(nodeErr), Detail: "slot 2 holds 7, expected 6"}
	payload := AppendResponse(nil, &resp)
	got, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Status.Err(got.Detail); !errors.Is(err, client.ErrVersionMismatch) {
		t.Fatalf("err = %v", err)
	}
}
