// Package wire is the binary codec of the node protocol: the framing
// and message formats a network transport uses to carry the
// client.NodeClient operations to a remote node engine.
//
// # Framing
//
// Every message travels as one length-prefixed frame:
//
//	uint32 big-endian payload length | payload
//
// A reader enforces a maximum payload length *before* allocating, so a
// corrupt or hostile peer cannot trigger an allocation blow-up; a
// frame longer than the limit fails with ErrFrameTooLarge and the
// connection should be dropped.
//
// # Messages
//
// A request payload is a fixed header followed by the variable parts:
//
//	op(1) stripe(8) shard(4) slot(4) expect(8) next(8) epoch(8)
//	nver(4) versions(8·nver) nsums(4) sums(16·nsums) dlen(4) data(dlen)
//
// Fields an operation does not use are zero; every request uses the
// same layout so the decoder is a single bounds-checked pass. The sums
// list carries cross-checksum entries (version, hash pairs — see
// DESIGN.md §6) alongside mutations and back with reads. A response
// payload is:
//
//	status(1) flag(1) dlen... detail(len-prefixed string)
//	nver(4) versions(8·nver) nsums(4) sums(16·nsums) dlen(4) data(dlen)
//
// Status carries the sentinel error taxonomy of the client package
// across the wire; Status.Err and StatusOf convert in both directions
// so a remote ErrVersionMismatch still satisfies
// errors.Is(err, client.ErrVersionMismatch) at the protocol layer.
//
// Decoded requests and responses alias the frame buffer for their Data
// field (versions are decoded into fresh slices); callers that retain
// the bytes past the next read must copy.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"trapquorum/client"
)

// Op identifies one node operation on the wire.
type Op uint8

// The node protocol operations. OpPing is a transport-level health
// probe answered without touching the store.
const (
	OpPing Op = iota + 1
	OpReadChunk
	OpReadVersions
	OpPutChunk
	OpPutChunkIfFresher
	OpCompareAndPut
	OpCompareAndAdd
	OpDeleteChunk
	OpHasChunk
	OpWipe
	OpEpochGet
	OpEpochSet
	opMax
)

// String names the operation for diagnostics.
func (op Op) String() string {
	switch op {
	case OpPing:
		return "ping"
	case OpReadChunk:
		return "read-chunk"
	case OpReadVersions:
		return "read-versions"
	case OpPutChunk:
		return "put-chunk"
	case OpPutChunkIfFresher:
		return "put-chunk-if-fresher"
	case OpCompareAndPut:
		return "compare-and-put"
	case OpCompareAndAdd:
		return "compare-and-add"
	case OpDeleteChunk:
		return "delete-chunk"
	case OpHasChunk:
		return "has-chunk"
	case OpWipe:
		return "wipe"
	case OpEpochGet:
		return "epoch-get"
	case OpEpochSet:
		return "epoch-set"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// ReplaySafe reports whether the operation may be sent again when the
// first attempt's fate is ambiguous (the request reached the wire but
// no response came back). That is stricter than idempotence against a
// quiet node: other writers can land between the lost first copy and
// the replay, so an unconditional mutation (PutChunk, DeleteChunk,
// Wipe) could silently roll their update back, and a conditional one
// (CompareAndPut, CompareAndAdd) would mis-report its applied first
// copy as a version mismatch. Only the read-only operations and the
// version-guarded PutChunkIfFresher — whose guard re-evaluates
// against the node's current state on every attempt — are safe.
// OpEpochSet qualifies because the epoch watermarks it installs are
// monotone maxima: a replay either repeats the same advance or is a
// no-op.
func (op Op) ReplaySafe() bool {
	switch op {
	case OpPing, OpReadChunk, OpReadVersions, OpHasChunk, OpPutChunkIfFresher,
		OpEpochGet, OpEpochSet:
		return true
	default:
		return false
	}
}

// Status is the result class of a response, carrying the client
// package's sentinel taxonomy across the wire.
type Status uint8

// Response statuses. StatusInternal covers node-side failures outside
// the protocol taxonomy (for example a disk error); the client
// surfaces them as opaque errors.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusVersionMismatch
	StatusBadRequest
	StatusInternal
	StatusOverloaded
	StatusQuotaExceeded
	StatusCorrupt
	StatusEpochStale
	statusMax
)

// Framing and decoding errors.
var (
	// ErrFrameTooLarge reports a frame whose declared payload exceeds
	// the reader's limit; it is returned before any allocation.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrMalformed reports a payload that does not parse.
	ErrMalformed = errors.New("wire: malformed message")
)

// DefaultMaxFrame bounds a frame's payload unless the caller chooses
// otherwise: large enough for a 16 MiB chunk plus headers, small
// enough that a corrupt length prefix cannot exhaust memory.
const DefaultMaxFrame = 16<<20 + 4096

// Request is one decoded node operation.
type Request struct {
	Op     Op
	ID     client.ChunkID
	Slot   int
	Expect uint64
	Next   uint64
	// Epoch is the placement epoch the issuing coordinator operated
	// under, or 0 for untagged (pre-reconfiguration) traffic. Nodes
	// reject tagged operations whose epoch they have retired with
	// StatusEpochStale. For OpEpochSet the watermarks ride Next
	// (installed) and Expect (retired) instead, so Epoch stays the
	// guard-only field on every op.
	Epoch uint64
	// Versions is the proposed version vector of the put-family
	// operations (decoded into a fresh slice).
	Versions []uint64
	// Sums carries the cross-checksum entries of the mutating
	// operations (decoded into a fresh slice; empty when the writer
	// sent no opinion). Encoded between the versions and the data.
	Sums []client.BlockSum
	// Data is the chunk payload or delta. Decoding aliases the frame
	// buffer; copy before the next read if retained.
	Data []byte
}

// Response is one decoded node answer.
type Response struct {
	Status Status
	// Detail is the node's human-readable error detail (empty on OK).
	Detail string
	// Flag answers boolean queries (OpHasChunk).
	Flag bool
	// Versions carries the version vector of OpReadChunk and
	// OpReadVersions responses.
	Versions []uint64
	// Sums carries the cross-checksum record of OpReadChunk and
	// OpReadVersions responses (empty when the node holds none).
	Sums []client.BlockSum
	// Data carries the chunk bytes of OpReadChunk responses. Decoding
	// aliases the frame buffer; copy before the next read if retained.
	Data []byte
}

const requestHeaderLen = 1 + 8 + 4 + 4 + 8 + 8 + 8 + 4 // up to and including nver

// EncodedRequestSize returns the exact payload length AppendRequest
// produces for req, letting a sender validate against its frame limit
// before touching the wire.
func EncodedRequestSize(req *Request) int {
	return requestHeaderLen + 8*len(req.Versions) + 4 + 16*len(req.Sums) + 4 + len(req.Data)
}

// appendSums encodes a checksum-entry list: count then
// (version, sum) pairs.
func appendSums(dst []byte, sums []client.BlockSum) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(sums)))
	for _, s := range sums {
		dst = binary.BigEndian.AppendUint64(dst, s.Version)
		dst = binary.BigEndian.AppendUint64(dst, s.Sum)
	}
	return dst
}

// decodeSums parses a checksum-entry list, returning the entries and
// the remaining payload. The count is bounds-checked against the
// payload before allocating, like the version vector.
func decodeSums(p []byte) ([]client.BlockSum, []byte, error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("%w: checksum count truncated", ErrMalformed)
	}
	nsums := binary.BigEndian.Uint32(p[0:4])
	p = p[4:]
	if uint64(nsums)*16 > uint64(len(p)) {
		return nil, nil, fmt.Errorf("%w: checksums truncated (%d declared, %d bytes left)", ErrMalformed, nsums, len(p))
	}
	var sums []client.BlockSum
	if nsums > 0 {
		sums = make([]client.BlockSum, nsums)
		for i := range sums {
			sums[i].Version = binary.BigEndian.Uint64(p[16*i:])
			sums[i].Sum = binary.BigEndian.Uint64(p[16*i+8:])
		}
		p = p[16*nsums:]
	}
	return sums, p, nil
}

// AppendRequest encodes req after dst and returns the extended slice.
func AppendRequest(dst []byte, req *Request) []byte {
	dst = append(dst, byte(req.Op))
	dst = binary.BigEndian.AppendUint64(dst, req.ID.Stripe)
	dst = binary.BigEndian.AppendUint32(dst, uint32(req.ID.Shard))
	dst = binary.BigEndian.AppendUint32(dst, uint32(req.Slot))
	dst = binary.BigEndian.AppendUint64(dst, req.Expect)
	dst = binary.BigEndian.AppendUint64(dst, req.Next)
	dst = binary.BigEndian.AppendUint64(dst, req.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Versions)))
	for _, v := range req.Versions {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	dst = appendSums(dst, req.Sums)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Data)))
	return append(dst, req.Data...)
}

// DecodeRequest parses a request payload. The returned request's Data
// aliases p.
func DecodeRequest(p []byte) (Request, error) {
	var req Request
	if len(p) < requestHeaderLen {
		return req, fmt.Errorf("%w: request header truncated (%d bytes)", ErrMalformed, len(p))
	}
	op := Op(p[0])
	if op == 0 || op >= opMax {
		return req, fmt.Errorf("%w: unknown op %d", ErrMalformed, p[0])
	}
	req.Op = op
	req.ID.Stripe = binary.BigEndian.Uint64(p[1:9])
	req.ID.Shard = int(int32(binary.BigEndian.Uint32(p[9:13])))
	req.Slot = int(int32(binary.BigEndian.Uint32(p[13:17])))
	req.Expect = binary.BigEndian.Uint64(p[17:25])
	req.Next = binary.BigEndian.Uint64(p[25:33])
	req.Epoch = binary.BigEndian.Uint64(p[33:41])
	nver := binary.BigEndian.Uint32(p[41:45])
	p = p[requestHeaderLen:]
	if uint64(nver)*8 > uint64(len(p)) {
		return req, fmt.Errorf("%w: versions truncated (%d declared, %d bytes left)", ErrMalformed, nver, len(p))
	}
	if nver > 0 {
		req.Versions = make([]uint64, nver)
		for i := range req.Versions {
			req.Versions[i] = binary.BigEndian.Uint64(p[8*i:])
		}
		p = p[8*nver:]
	}
	sums, p, err := decodeSums(p)
	if err != nil {
		return req, err
	}
	req.Sums = sums
	if len(p) < 4 {
		return req, fmt.Errorf("%w: data length truncated", ErrMalformed)
	}
	dlen := binary.BigEndian.Uint32(p[0:4])
	p = p[4:]
	if uint64(dlen) != uint64(len(p)) {
		return req, fmt.Errorf("%w: data length %d, %d bytes left", ErrMalformed, dlen, len(p))
	}
	if dlen > 0 {
		req.Data = p
	}
	return req, nil
}

// AppendResponse encodes resp after dst and returns the extended
// slice.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst = append(dst, byte(resp.Status))
	var flag byte
	if resp.Flag {
		flag = 1
	}
	dst = append(dst, flag)
	detail := resp.Detail
	if len(detail) > 0xffff {
		detail = detail[:0xffff]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(detail)))
	dst = append(dst, detail...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Versions)))
	for _, v := range resp.Versions {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	dst = appendSums(dst, resp.Sums)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Data)))
	return append(dst, resp.Data...)
}

// DecodeResponse parses a response payload. The returned response's
// Data aliases p.
func DecodeResponse(p []byte) (Response, error) {
	var resp Response
	if len(p) < 4 {
		return resp, fmt.Errorf("%w: response header truncated", ErrMalformed)
	}
	status := Status(p[0])
	if status == 0 || status >= statusMax {
		return resp, fmt.Errorf("%w: unknown status %d", ErrMalformed, p[0])
	}
	resp.Status = status
	switch p[1] {
	case 0:
	case 1:
		resp.Flag = true
	default:
		return resp, fmt.Errorf("%w: flag byte %d", ErrMalformed, p[1])
	}
	detailLen := binary.BigEndian.Uint16(p[2:4])
	p = p[4:]
	if int(detailLen) > len(p) {
		return resp, fmt.Errorf("%w: detail truncated", ErrMalformed)
	}
	resp.Detail = string(p[:detailLen])
	p = p[detailLen:]
	if len(p) < 4 {
		return resp, fmt.Errorf("%w: version count truncated", ErrMalformed)
	}
	nver := binary.BigEndian.Uint32(p[0:4])
	p = p[4:]
	if uint64(nver)*8 > uint64(len(p)) {
		return resp, fmt.Errorf("%w: versions truncated (%d declared, %d bytes left)", ErrMalformed, nver, len(p))
	}
	if nver > 0 {
		resp.Versions = make([]uint64, nver)
		for i := range resp.Versions {
			resp.Versions[i] = binary.BigEndian.Uint64(p[8*i:])
		}
		p = p[8*nver:]
	}
	sums, p, err := decodeSums(p)
	if err != nil {
		return resp, err
	}
	resp.Sums = sums
	if len(p) < 4 {
		return resp, fmt.Errorf("%w: data length truncated", ErrMalformed)
	}
	dlen := binary.BigEndian.Uint32(p[0:4])
	p = p[4:]
	if uint64(dlen) != uint64(len(p)) {
		return resp, fmt.Errorf("%w: data length %d, %d bytes left", ErrMalformed, dlen, len(p))
	}
	if dlen > 0 {
		resp.Data = p
	}
	return resp, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf when it is large enough, and
// returns the payload. A declared length above max fails with
// ErrFrameTooLarge before any allocation. io.EOF is returned
// unwrapped when the stream ends cleanly between frames.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	// The header is staged in buf itself rather than a local array: a
	// stack [4]byte passed through the io.Reader interface escapes,
	// which would put one small allocation on every frame read.
	if cap(buf) < 4 {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("wire: truncated frame header: %w", err)
		}
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr)
	if int64(size) > int64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, size, max)
	}
	if int(size) > cap(buf) {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	return buf, nil
}

// Err converts a response status (plus its detail) back into the
// client package's sentinel taxonomy. StatusOK yields nil.
func (s Status) Err(detail string) error {
	var base error
	switch s {
	case StatusOK:
		return nil
	case StatusNotFound:
		base = client.ErrNotFound
	case StatusVersionMismatch:
		base = client.ErrVersionMismatch
	case StatusBadRequest:
		base = client.ErrBadRequest
	case StatusOverloaded:
		base = client.ErrOverloaded
	case StatusQuotaExceeded:
		base = client.ErrQuotaExceeded
	case StatusCorrupt:
		base = client.ErrCorrupt
	case StatusEpochStale:
		base = client.ErrEpochStale
	default:
		if detail == "" {
			detail = "internal node error"
		}
		return fmt.Errorf("wire: remote node: %s", detail)
	}
	if detail == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, detail)
}

// StatusOf classifies a node-side error for the wire. A nil error is
// StatusOK.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, client.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, client.ErrVersionMismatch):
		return StatusVersionMismatch
	case errors.Is(err, client.ErrBadRequest):
		return StatusBadRequest
	case errors.Is(err, client.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, client.ErrQuotaExceeded):
		return StatusQuotaExceeded
	case errors.Is(err, client.ErrCorrupt):
		return StatusCorrupt
	case errors.Is(err, client.ErrEpochStale):
		return StatusEpochStale
	default:
		return StatusInternal
	}
}
