package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder: it
// must never panic, and whatever it accepts must re-encode to the
// exact same payload (canonical encoding).
func FuzzDecodeRequest(f *testing.F) {
	for _, req := range requestFixtures() {
		f.Add(AppendRequest(nil, &req))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		again := AppendRequest(nil, &req)
		if !bytes.Equal(again, payload) {
			t.Fatalf("accepted payload is not canonical:\n in: %x\nout: %x", payload, again)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range responseFixtures() {
		f.Add(AppendResponse(nil, &resp))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 32))
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		again := AppendResponse(nil, &resp)
		if !bytes.Equal(again, payload) {
			t.Fatalf("accepted payload is not canonical:\n in: %x\nout: %x", payload, again)
		}
	})
}

// FuzzReadFrame feeds arbitrary streams to the frame reader with a
// small limit: it must never allocate beyond the limit nor panic, and
// an accepted frame must round-trip through WriteFrame.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		const max = 1 << 16
		payload, err := ReadFrame(bytes.NewReader(stream), nil, max)
		if err != nil {
			return
		}
		if len(payload) > max {
			t.Fatalf("frame of %d bytes exceeds limit %d", len(payload), max)
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), stream[:4+len(payload)]) {
			t.Fatal("frame did not round-trip")
		}
	})
}
