package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"trapquorum/client"
	"trapquorum/internal/core"
	"trapquorum/internal/nodeengine"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

// The streaming contract is O(stripe) memory however large the object.
// This test moves a 1 GiB object through PutReader and back through
// GetWriter against file-backed nodes (no in-memory chunk mirror, so
// process heap reflects only the streaming pipeline) while sampling
// the heap: the peak must stay a small multiple of the stripe size,
// nowhere near the object size.

// fileChunkStore is a minimal nodeengine.ChunkStore that keeps chunk
// data in one file per chunk and only the (tiny) version vectors and
// metadata in memory — the counterpart of a node whose data lives on
// disk. Not safe for concurrent use; the engine serialises all calls.
type fileChunkStore struct {
	dir  string
	meta map[client.ChunkID]fileChunkMeta
	last []byte // Get buffer, valid until the next call (per contract)
}

type fileChunkMeta struct {
	versions []uint64
	meta     nodeengine.Meta
}

func newFileChunkStore(dir string) *fileChunkStore {
	return &fileChunkStore{dir: dir, meta: make(map[client.ChunkID]fileChunkMeta)}
}

func (s *fileChunkStore) path(id client.ChunkID) string {
	return filepath.Join(s.dir, fmt.Sprintf("%d_%d.chunk", id.Stripe, id.Shard))
}

func (s *fileChunkStore) Get(id client.ChunkID) ([]byte, []uint64, nodeengine.Meta, bool, error) {
	m, ok := s.meta[id]
	if !ok {
		return nil, nil, nodeengine.Meta{}, false, nil
	}
	f, err := os.Open(s.path(id))
	if err != nil {
		return nil, nil, nodeengine.Meta{}, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, nodeengine.Meta{}, false, err
	}
	if cap(s.last) < int(fi.Size()) {
		s.last = make([]byte, fi.Size())
	}
	s.last = s.last[:fi.Size()]
	if _, err := f.ReadAt(s.last, 0); err != nil {
		return nil, nil, nodeengine.Meta{}, false, err
	}
	return s.last, m.versions, m.meta, true, nil
}

func (s *fileChunkStore) Put(id client.ChunkID, data []byte, versions []uint64, meta nodeengine.Meta) error {
	if err := os.WriteFile(s.path(id), data, 0o644); err != nil {
		return err
	}
	mcopy := meta
	mcopy.Rec = append([]client.BlockSum(nil), meta.Rec...)
	s.meta[id] = fileChunkMeta{versions: append([]uint64(nil), versions...), meta: mcopy}
	return nil
}

func (s *fileChunkStore) Delete(id client.ChunkID) error {
	if _, ok := s.meta[id]; !ok {
		return nil
	}
	delete(s.meta, id)
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (s *fileChunkStore) Wipe() error {
	for id := range s.meta {
		if err := s.Delete(id); err != nil {
			return err
		}
	}
	return nil
}

func (s *fileChunkStore) Len() (int, error) { return len(s.meta), nil }
func (s *fileChunkStore) Close() error      { return nil }

// patternByte is the deterministic byte stream both ends agree on.
func patternByte(pos int64) byte {
	x := uint64(pos)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	return byte(x >> 56)
}

// patternReader generates the stream without ever materialising it.
type patternReader struct{ pos, n int64 }

func (r *patternReader) Read(p []byte) (int, error) {
	if r.pos >= r.n {
		return 0, os.ErrDeadlineExceeded // never reached: PutReader reads exactly n
	}
	if int64(len(p)) > r.n-r.pos {
		p = p[:r.n-r.pos]
	}
	for i := range p {
		p[i] = patternByte(r.pos + int64(i))
	}
	r.pos += int64(len(p))
	return len(p), nil
}

// verifyWriter checks the incoming stream against the pattern in
// chunks, holding only one scratch buffer.
type verifyWriter struct {
	pos     int64
	scratch []byte
	bad     atomic.Int64 // first mismatch position + 1, 0 = clean
}

func (w *verifyWriter) Write(p []byte) (int, error) {
	if cap(w.scratch) < len(p) {
		w.scratch = make([]byte, len(p))
	}
	want := w.scratch[:len(p)]
	for i := range want {
		want[i] = patternByte(w.pos + int64(i))
	}
	if !bytes.Equal(p, want) && w.bad.Load() == 0 {
		w.bad.Store(w.pos + 1)
	}
	w.pos += int64(len(p))
	return len(p), nil
}

func TestStreamGiBObjectStaysStripeSized(t *testing.T) {
	if testing.Short() {
		t.Skip("1 GiB streaming round-trip: skipped with -short")
	}
	const (
		n         = 15
		k         = 8
		blockSize = 256 << 10
		size      = 1 << 30 // 1 GiB = 512 stripes of 2 MiB payload
	)
	nodes := make([]core.NodeClient, n)
	base := t.TempDir()
	for j := range nodes {
		dir := filepath.Join(base, fmt.Sprintf("node%d", j))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		nodes[j] = nodeengine.New(newFileChunkStore(dir))
	}
	strat, err := placement.NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := New(nodes, Config{
		N: n, K: k,
		Shape: trapezoid.Shape{A: 2, B: 3, H: 1}, W: 3,
		BlockSize: blockSize,
		Placement: strat,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Heap sampler: record the peak HeapAlloc while the object streams.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	var peak atomic.Uint64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		var m runtime.MemStats
		for {
			select {
			case <-stopSampler:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak.Load() {
					peak.Store(m.HeapAlloc)
				}
			}
		}
	}()

	ctx := context.Background()
	if err := store.PutReader(ctx, "big", &patternReader{n: size}, size); err != nil {
		t.Fatal(err)
	}
	vw := &verifyWriter{}
	written, err := store.GetWriter(ctx, "big", vw)
	if err != nil {
		t.Fatal(err)
	}
	close(stopSampler)
	<-samplerDone

	if written != size {
		t.Fatalf("round-trip returned %d bytes, want %d", written, size)
	}
	if bad := vw.bad.Load(); bad != 0 {
		t.Fatalf("stream corrupt at byte %d", bad-1)
	}
	// O(stripe), not O(object): the stripe payload is 2 MiB and the
	// pipeline holds at most two stripes plus parity and protocol
	// working set. 128 MiB of headroom absorbs GC slack and still sits
	// 8× below the object size — a buffered path would hold the full
	// GiB (and its encoded shards) live.
	const headroom = 128 << 20
	growth := int64(peak.Load()) - int64(baseline)
	t.Logf("heap baseline %d KiB, peak growth %d KiB", baseline>>10, growth>>10)
	if growth > headroom {
		t.Fatalf("peak heap grew %d MiB during a 1 GiB stream, want < %d MiB (O(stripe))",
			growth>>20, headroom>>20)
	}
}
