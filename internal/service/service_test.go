package service

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"trapquorum/internal/core"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

const (
	testClusterSize = 30
	testBlockSize   = 64
)

// clientsOf adapts a simulated cluster to the transport-client slice
// the service layer consumes.
func clientsOf(cluster *sim.Cluster) []core.NodeClient {
	nodes := make([]core.NodeClient, cluster.Size())
	for j := range nodes {
		nodes[j] = cluster.Node(j)
	}
	return nodes
}

func newTestStore(t testing.TB) (*Store, *sim.Cluster) {
	t.Helper()
	cluster, err := sim.NewCluster(testClusterSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	strat, err := placement.NewRing(testClusterSize, 16)
	if err != nil {
		t.Fatal(err)
	}
	store, err := New(clientsOf(cluster), Config{
		N: 15, K: 8,
		Shape: trapezoid.Shape{A: 2, B: 3, H: 1}, W: 3,
		BlockSize: testBlockSize,
		Placement: strat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store, cluster
}

func TestNewValidation(t *testing.T) {
	cluster, _ := sim.NewCluster(10)
	defer cluster.Close()
	strat, _ := placement.NewRoundRobin(10)
	base := Config{N: 15, K: 8, Shape: trapezoid.Shape{A: 2, B: 3, H: 1}, W: 3, BlockSize: 64, Placement: strat}

	if _, err := New(clientsOf(cluster), base); err == nil {
		t.Error("placement narrower than n accepted")
	}
	cfg := base
	cfg.Placement = nil
	if _, err := New(clientsOf(cluster), cfg); err == nil {
		t.Error("nil placement accepted")
	}
	cfg = base
	cfg.BlockSize = 0
	if _, err := New(clientsOf(cluster), cfg); err == nil {
		t.Error("zero block size accepted")
	}
	bigStrat, _ := placement.NewRoundRobin(40)
	cfg = base
	cfg.Placement = bigStrat
	if _, err := New(clientsOf(cluster), cfg); err == nil {
		t.Error("placement wider than cluster accepted")
	}
	cfg = base
	strat9, _ := placement.NewRoundRobin(10)
	cfg.Placement = strat9
	cfg.N = 9
	cfg.K = 8 // trapezoid (2,3,1) holds 8, needs n-k+1 = 2
	if _, err := New(clientsOf(cluster), cfg); err == nil {
		t.Error("mismatched trapezoid accepted")
	}
}

func TestPutGetSingleStripe(t *testing.T) {
	store, _ := newTestStore(t)
	payload := []byte("small object, fits one stripe")
	if err := store.Put(context.Background(), "obj", payload); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
	size, err := store.Size("obj")
	if err != nil || size != len(payload) {
		t.Fatalf("size = %d, %v", size, err)
	}
	stripes, _ := store.StripesOf("obj")
	if len(stripes) != 1 {
		t.Fatalf("stripes = %v", stripes)
	}
}

func TestPutGetMultiStripe(t *testing.T) {
	store, _ := newTestStore(t)
	// Stripe capacity is k * blocksize = 512; use ~5 stripes.
	payload := make([]byte, 512*4+100)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := store.Put(context.Background(), "big", payload); err != nil {
		t.Fatal(err)
	}
	stripes, _ := store.StripesOf("big")
	if len(stripes) != 5 {
		t.Fatalf("stripes = %d, want 5", len(stripes))
	}
	got, err := store.Get(context.Background(), "big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-stripe round trip mismatch")
	}
}

func TestPutEmptyObject(t *testing.T) {
	store, _ := newTestStore(t)
	if err := store.Put(context.Background(), "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(context.Background(), "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestPutDuplicateKeyRejected(t *testing.T) {
	store, _ := newTestStore(t)
	if err := store.Put(context.Background(), "k", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(context.Background(), "k", []byte("b")); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetUnknownKey(t *testing.T) {
	store, _ := newTestStore(t)
	if _, err := store.Get(context.Background(), "nope"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v", err)
	}
	if _, err := store.Size("nope"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeysSorted(t *testing.T) {
	store, _ := newTestStore(t)
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := store.Put(context.Background(), k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := store.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[2] != "zeta" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestReadAt(t *testing.T) {
	store, _ := newTestStore(t)
	payload := make([]byte, 1500)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := store.Put(context.Background(), "obj", payload); err != nil {
		t.Fatal(err)
	}
	cases := [][2]int{{0, 10}, {60, 10}, {64, 64}, {500, 600}, {1400, 100}, {0, 1500}, {700, 0}}
	for _, c := range cases {
		got, err := store.ReadAt(context.Background(), "obj", c[0], c[1])
		if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", c[0], c[1], err)
		}
		if !bytes.Equal(got, payload[c[0]:c[0]+c[1]]) {
			t.Fatalf("ReadAt(%d,%d) wrong content", c[0], c[1])
		}
	}
	if _, err := store.ReadAt(context.Background(), "obj", 1499, 2); !errors.Is(err, ErrBadRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := store.ReadAt(context.Background(), "obj", -1, 2); !errors.Is(err, ErrBadRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteAtInPlace(t *testing.T) {
	store, _ := newTestStore(t)
	payload := make([]byte, 1500)
	rand.New(rand.NewSource(2)).Read(payload)
	if err := store.Put(context.Background(), "disk", payload); err != nil {
		t.Fatal(err)
	}
	// Patch across a block boundary and across a stripe boundary
	// (stripe capacity 512).
	patches := []struct {
		off  int
		data []byte
	}{
		{10, []byte("hello")},
		{60, bytes.Repeat([]byte{0xAA}, 10)},   // crosses block 0->1
		{500, bytes.Repeat([]byte{0xBB}, 40)},  // crosses stripe 1->2
		{1436, bytes.Repeat([]byte{0xCC}, 64)}, // tail block
	}
	for _, p := range patches {
		if err := store.WriteAt(context.Background(), "disk", p.off, p.data); err != nil {
			t.Fatalf("WriteAt(%d): %v", p.off, err)
		}
		copy(payload[p.off:], p.data)
	}
	got, err := store.Get(context.Background(), "disk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("WriteAt result mismatch")
	}
	// Out-of-range writes rejected.
	if err := store.WriteAt(context.Background(), "disk", 1499, []byte{1, 2}); !errors.Is(err, ErrBadRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestDegradedOperations(t *testing.T) {
	store, cluster := newTestStore(t)
	payload := make([]byte, 2000)
	rand.New(rand.NewSource(3)).Read(payload)
	if err := store.Put(context.Background(), "obj", payload); err != nil {
		t.Fatal(err)
	}
	// Crash a handful of the 30 nodes: each stripe loses at most a
	// few of its 15 shards, well inside tolerance.
	for _, n := range []int{1, 7, 19, 25} {
		cluster.Crash(n)
	}
	got, err := store.Get(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read mismatch")
	}
	// In-place update still works degraded.
	patch := bytes.Repeat([]byte{0xEE}, 100)
	if err := store.WriteAt(context.Background(), "obj", 300, patch); err != nil {
		t.Fatal(err)
	}
	copy(payload[300:], patch)
	got, err = store.Get(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded write mismatch")
	}
}

func TestRepairClusterNode(t *testing.T) {
	store, cluster := newTestStore(t)
	payload := make([]byte, 3000)
	rand.New(rand.NewSource(4)).Read(payload)
	if err := store.Put(context.Background(), "obj", payload); err != nil {
		t.Fatal(err)
	}
	// Count chunks on node 5, then lose its disk.
	victim := 5
	cluster.Crash(victim)
	cluster.Restart(victim)
	if err := cluster.Node(victim).Wipe(context.Background()); err != nil {
		t.Fatal(err)
	}
	repaired, err := store.RepairClusterNode(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	stripes, _ := store.StripesOf("obj")
	onNode := 0
	for _, st := range stripes {
		store.fleet.mu.Lock()
		for _, n := range store.fleet.stripeLoc[st] {
			if n == victim {
				onNode++
			}
		}
		store.fleet.mu.Unlock()
	}
	if repaired != onNode {
		t.Fatalf("repaired %d, expected %d chunks on node %d", repaired, onNode, victim)
	}
	got, err := store.Get(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("post-repair read mismatch")
	}
}

func TestDeleteRemovesChunks(t *testing.T) {
	store, cluster := newTestStore(t)
	if err := store.Put(context.Background(), "obj", bytes.Repeat([]byte{1}, 600)); err != nil {
		t.Fatal(err)
	}
	stripes, _ := store.StripesOf("obj")
	store.fleet.mu.Lock()
	locs := make(map[uint64][]int)
	for _, st := range stripes {
		locs[st] = append([]int(nil), store.fleet.stripeLoc[st]...)
	}
	store.fleet.mu.Unlock()
	if err := store.Delete(context.Background(), "obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(context.Background(), "obj"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v", err)
	}
	for st, nodes := range locs {
		for shard, node := range nodes {
			if ok, _ := cluster.Node(node).HasChunk(context.Background(), sim.ChunkID{Stripe: st, Shard: shard}); ok {
				t.Fatalf("chunk %d/%d survived delete on node %d", st, shard, node)
			}
		}
	}
	if err := store.Delete(context.Background(), "obj"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("double delete err = %v", err)
	}
	// Key is reusable after delete.
	if err := store.Put(context.Background(), "obj", []byte("new")); err != nil {
		t.Fatal(err)
	}
}

func TestSystemsReusedAcrossStripes(t *testing.T) {
	cluster, err := sim.NewCluster(15)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	// Round-robin over exactly n nodes: every stripe has the same
	// placement, so exactly one protocol instance must be built.
	strat, _ := placement.NewRoundRobin(15)
	store, err := New(clientsOf(cluster), Config{
		N: 15, K: 8,
		Shape: trapezoid.Shape{A: 2, B: 3, H: 1}, W: 3,
		BlockSize: 32,
		Placement: strat,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32*8*3) // 3 stripes
	if err := store.Put(context.Background(), "a", payload); err != nil {
		t.Fatal(err)
	}
	store.fleet.mu.Lock()
	defer store.fleet.mu.Unlock()
	// Placement rotates by stripe id, so ids 1,2,3 give 3 rotations;
	// but ids repeat placements every 15 stripes — at most 3 here.
	if len(store.fleet.systems) > 3 {
		t.Fatalf("built %d systems for 3 stripes", len(store.fleet.systems))
	}
}

func BenchmarkServiceWriteAt(b *testing.B) {
	cluster, _ := sim.NewCluster(testClusterSize)
	defer cluster.Close()
	strat, _ := placement.NewRing(testClusterSize, 16)
	store, err := New(clientsOf(cluster), Config{
		N: 15, K: 8,
		Shape: trapezoid.Shape{A: 2, B: 3, H: 1}, W: 3,
		BlockSize: 4096,
		Placement: strat,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096*8)
	if err := store.Put(context.Background(), "disk", payload); err != nil {
		b.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0xAB}, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.WriteAt(context.Background(), "disk", (i%8)*4096, patch); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPutFailureLeavesNoOrphanChunks forces a multi-stripe Put to
// fail mid-seed (a node goes down) and checks that the chunks of the
// stripes seeded before the failure were cleaned up — a failed Put
// must leave nothing behind on any node.
func TestPutFailureLeavesNoOrphanChunks(t *testing.T) {
	ctx := context.Background()
	store, cluster := newTestStore(t)
	payload := make([]byte, 5*8*testBlockSize) // five stripes
	rand.New(rand.NewSource(11)).Read(payload)

	cluster.Crash(0) // every placement touches some nodes; ring spreads wide
	err := store.Put(ctx, "doomed", payload)
	if err == nil {
		// The ring may have avoided node 0 entirely for all five
		// stripes; crash everything to force the failure instead.
		_ = store.Delete(ctx, "doomed")
		for j := 0; j < cluster.Size(); j++ {
			cluster.Crash(j)
		}
		if err = store.Put(ctx, "doomed", payload); err == nil {
			t.Fatal("put with the whole cluster down succeeded")
		}
	}
	cluster.RestartAll()

	if _, err := store.Get(ctx, "doomed"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("failed put registered the key: %v", err)
	}
	orphans := 0
	for j := 0; j < cluster.Size(); j++ {
		n := cluster.Node(j)
		for stripe := uint64(1); stripe <= 10; stripe++ {
			for shard := 0; shard < 15; shard++ {
				if ok, _ := n.HasChunk(ctx, sim.ChunkID{Stripe: stripe, Shard: shard}); ok {
					orphans++
				}
			}
		}
	}
	if orphans != 0 {
		t.Fatalf("failed put left %d orphan chunks", orphans)
	}
}

// TestConcurrentPutSameKey races two Puts of one key: exactly one may
// win; the loser must see ErrExists and leave no trace.
func TestConcurrentPutSameKey(t *testing.T) {
	ctx := context.Background()
	store, _ := newTestStore(t)
	payload := make([]byte, 2*8*testBlockSize)
	rand.New(rand.NewSource(21)).Read(payload)
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		go func() { errs <- store.Put(ctx, "contested", payload) }()
	}
	var wins, exists int
	for g := 0; g < 2; g++ {
		switch err := <-errs; {
		case err == nil:
			wins++
		case errors.Is(err, ErrExists):
			exists++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if wins != 1 || exists != 1 {
		t.Fatalf("wins=%d exists=%d", wins, exists)
	}
	if got, err := store.Get(ctx, "contested"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("winner's object unreadable (%v)", err)
	}
}

// TestDeleteWithDeadContext verifies a cancelled context gates Delete
// before anything is unregistered: the key must survive untouched.
func TestDeleteWithDeadContext(t *testing.T) {
	ctx := context.Background()
	store, _ := newTestStore(t)
	if err := store.Put(ctx, "keep", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := store.Delete(dead, "keep"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got, err := store.Get(ctx, "keep"); err != nil || string(got) != "payload" {
		t.Fatalf("aborted delete damaged the object (%v)", err)
	}
}
