package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"trapquorum/client"
	"trapquorum/internal/core"
	"trapquorum/internal/erasure"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

// Online reconfiguration: the fleet's placement is versioned into
// epochs, each an immutable (n, k, trapezoid, placement, roster)
// tuple. Reconfigure installs the next epoch as the target of new
// Puts, then migrates every existing object — read whole from its old
// epoch's stripes, re-encoded and seeded onto the new placement, cut
// over atomically under the object's lock — and finally fences the
// previous epochs at the nodes (client.EpochSetter), so a stale
// coordinator still stamping retired epochs is refused with
// client.ErrEpochStale. Old and new quorums overlap for the whole
// drain: reads follow each object's own epoch and retry across the
// cutover, writes hold the object lock shared, so no acked write is
// ever lost and no caller sees an error it would not have seen on a
// static fleet.

// ErrMigrationActive rejects a reconfiguration towards a different
// target while another migration is still draining.
var ErrMigrationActive = errors.New("service: another reconfiguration is in progress")

// epochCfg is one placement epoch: the full stripe geometry and the
// epoch-stamped placement new stripes of this epoch are created with.
// Immutable once built — a reconfiguration adds the next epoch rather
// than mutating the current one, so both sides of a migration coexist.
type epochCfg struct {
	id     uint64
	n, k   int
	shape  trapezoid.Shape
	w      int
	code   *erasure.Code
	tcfg   trapezoid.Config
	place  placement.Strategy
	active []int // cluster node ids serving this epoch
}

// ReconfigSpec describes a reconfiguration target. Zero geometry
// fields inherit the current epoch's value, so a pure roster change
// needs only Active and a pure recode needs only N/K/Shape/W.
type ReconfigSpec struct {
	// N, K are the target erasure-code parameters (0 = keep current).
	N, K int
	// Shape and W parameterise the target trapezoid (zero = keep
	// current). Shape.NbNodes must equal N-K+1.
	Shape trapezoid.Shape
	W     int
	// Active is the cluster node roster of the target epoch, as ids
	// into the fleet's client table (grow it first with
	// AddNodeClients). nil keeps the current roster; an explicit
	// roster may drop ids (shrink) or include fresh ones (grow).
	Active []int
	// Placement optionally overrides the inner placement strategy,
	// spanning positions 0..len(Active)-1 (it is wrapped in an
	// epoch-stamped placement.Map). nil places round-robin over the
	// roster.
	Placement placement.Strategy
}

// migKey names one object in a migration queue.
type migKey struct{ tenant, key string }

// migration is the in-flight state of one reconfiguration drain.
// Guarded by fleet.mu.
type migration struct {
	target *epochCfg
	from   uint64
	queue  []migKey
	queued map[migKey]bool
	done   int
	moved  int64
	fails  int
}

// enqueueLocked queues one object unless it already is. Caller holds
// fleet.mu.
func (m *migration) enqueueLocked(tenant, key string) {
	mk := migKey{tenant, key}
	if m.queued[mk] {
		return
	}
	m.queued[mk] = true
	m.queue = append(m.queue, mk)
}

// MigrationStatus is the externally visible reconfiguration state:
// the fleet's current and retired epochs always, plus drain progress
// while a migration is active.
type MigrationStatus struct {
	// Active reports whether a migration is draining.
	Active bool
	// Epoch is the placement epoch new objects are placed in; Retired
	// is the highest epoch fenced off at the nodes. Epoch == Retired+1
	// means the fleet is fully converged.
	Epoch, Retired uint64
	// From and To are the source and target epochs of the active
	// migration (zero when idle).
	From, To uint64
	// TargetN, TargetK are the geometry being migrated to.
	TargetN, TargetK int
	// DoneObjects and PendingObjects count the drain's progress;
	// TotalObjects is their sum. Failures counts object moves that
	// errored and were re-queued.
	DoneObjects, PendingObjects, TotalObjects int
	// MovedBytes is the logical object bytes re-placed so far.
	Failures   int
	MovedBytes int64
}

// Migration snapshots the reconfiguration state.
func (f *Fleet) Migration() MigrationStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := MigrationStatus{Epoch: f.cur.id, Retired: f.retired}
	if f.mig != nil {
		st.Active = true
		st.From = f.mig.from
		st.To = f.mig.target.id
		st.TargetN = f.mig.target.n
		st.TargetK = f.mig.target.k
		st.DoneObjects = f.mig.done
		st.PendingObjects = len(f.mig.queue)
		st.TotalObjects = f.mig.done + len(f.mig.queue)
		st.Failures = f.mig.fails
		st.MovedBytes = f.mig.moved
	}
	return st
}

// Migration delegates to the fleet (reconfiguration scope is the
// cluster).
func (s *Store) Migration() MigrationStatus { return s.fleet.Migration() }

// Epoch returns the placement epoch new objects are placed in.
func (f *Fleet) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur.id
}

// ActiveNodes returns the current epoch's cluster node roster.
func (f *Fleet) ActiveNodes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.cur.active...)
}

// CodeParams returns the current epoch's (n, k).
func (f *Fleet) CodeParams() (n, k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur.n, f.cur.k
}

// NodeCount returns how many node clients the fleet holds (the id
// space, not the active roster — removed nodes keep their ids).
func (f *Fleet) NodeCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.nodes)
}

// AddNodeClients appends fresh node clients to the fleet's table,
// returning the cluster id of the first one. The new nodes serve no
// stripes until a reconfiguration includes them in a roster.
func (f *Fleet) AddNodeClients(clients ...core.NodeClient) (int, error) {
	for i, c := range clients {
		if c == nil {
			return 0, fmt.Errorf("service: AddNodeClients: client %d is nil", i)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	first := len(f.nodes)
	f.nodes = append(f.nodes, clients...)
	return first, nil
}

// specTargetLocked resolves a spec against the current epoch: zero
// fields inherit. Caller holds f.mu.
func (f *Fleet) specTargetLocked(spec ReconfigSpec) (ReconfigSpec, error) {
	cur := f.cur
	if spec.N == 0 {
		spec.N = cur.n
	}
	if spec.K == 0 {
		spec.K = cur.k
	}
	if spec.Shape == (trapezoid.Shape{}) {
		spec.Shape = cur.shape
	}
	if spec.W == 0 {
		spec.W = cur.w
	}
	if spec.Active == nil {
		spec.Active = append([]int(nil), cur.active...)
	}
	for _, id := range spec.Active {
		if id < 0 || id >= len(f.nodes) {
			return spec, fmt.Errorf("service: roster node %d outside fleet of %d clients", id, len(f.nodes))
		}
	}
	if len(spec.Active) < spec.N {
		return spec, fmt.Errorf("service: roster of %d nodes cannot hold %d shards", len(spec.Active), spec.N)
	}
	return spec, nil
}

// sameTarget reports whether the resolved spec describes the epoch ec.
func sameTarget(ec *epochCfg, spec ReconfigSpec) bool {
	if ec.n != spec.N || ec.k != spec.K || ec.shape != spec.Shape || ec.w != spec.W {
		return false
	}
	if len(ec.active) != len(spec.Active) {
		return false
	}
	for i, id := range ec.active {
		if spec.Active[i] != id {
			return false
		}
	}
	return true
}

// staleLocked reports whether any tenant still holds an object outside
// epoch ec. Caller holds f.mu.
func (f *Fleet) staleLocked(ec *epochCfg) bool {
	for _, st := range f.tenants {
		for _, m := range st.directory {
			if m.ec != ec {
				return true
			}
		}
	}
	return false
}

// rescanLocked (re)builds the migration queue from a full directory
// scan: every object of every tenant not yet in the target epoch, in
// deterministic tenant/key order. This is also the resume path — a
// coordinator killed mid-drain rebuilds exactly the remaining work.
// Caller holds f.mu.
func (f *Fleet) rescanLocked() {
	mig := f.mig
	tenants := make([]string, 0, len(f.tenants))
	for name := range f.tenants {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		st := f.tenants[tn]
		keys := make([]string, 0, len(st.directory))
		for k, m := range st.directory {
			if m.ec != mig.target {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			mig.enqueueLocked(tn, k)
		}
	}
}

// StartReconfigure installs the target epoch and queues the migration,
// without driving it: new objects land in the target immediately;
// existing ones are moved by MigrationStep calls (DriveMigration, or
// the self-heal orchestrator's background pump). Calling it again with
// the same target is the resume path — it rebuilds the queue from a
// fresh scan. A different target while a migration drains is refused
// with ErrMigrationActive. When the fleet already converged on the
// target it is a no-op.
func (f *Fleet) StartReconfigure(ctx context.Context, spec ReconfigSpec) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	cur := f.cur
	spec, err := f.specTargetLocked(spec)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	same := sameTarget(cur, spec)
	if f.mig != nil {
		// cur is always the active migration's target.
		if !same {
			f.mu.Unlock()
			return ErrMigrationActive
		}
		f.rescanLocked()
		f.mu.Unlock()
		return nil
	}
	if same {
		if f.retired+1 >= cur.id && !f.staleLocked(cur) {
			f.mu.Unlock()
			return nil // fully converged: nothing to do
		}
		// Converging on cur was interrupted (abort, or a crashed
		// coordinator): resume draining into it.
		f.mig = &migration{target: cur, from: f.retired, queued: make(map[migKey]bool)}
		f.rescanLocked()
		f.mu.Unlock()
		return nil
	}

	// Build the target epoch. Validation happens before any state
	// changes; the constructors reject bad geometry.
	codeOpts := []erasure.Option{}
	if f.cfg.CodingParallelism > 1 {
		codeOpts = append(codeOpts, erasure.WithParallelism(f.cfg.CodingParallelism))
	}
	code, err := erasure.New(spec.N, spec.K, codeOpts...)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	tcfg, err := trapezoid.NewConfig(spec.Shape, spec.W)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if got, want := spec.Shape.NbNodes(), spec.N-spec.K+1; got != want {
		f.mu.Unlock()
		return fmt.Errorf("service: trapezoid holds %d nodes, need n-k+1 = %d", got, want)
	}
	inner := spec.Placement
	if inner == nil {
		inner, err = placement.NewRoundRobin(len(spec.Active))
		if err != nil {
			f.mu.Unlock()
			return err
		}
	}
	pm, err := placement.NewMap(cur.id+1, inner, spec.Active)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	target := &epochCfg{
		id: cur.id + 1, n: spec.N, k: spec.K, shape: spec.Shape, w: spec.W,
		code: code, tcfg: tcfg, place: pm, active: append([]int(nil), spec.Active...),
	}
	f.epochs[target.id] = target
	f.cur = target
	f.mig = &migration{target: target, from: cur.id, queued: make(map[migKey]bool)}
	f.rescanLocked()
	retired := f.retired
	f.mu.Unlock()

	// Announce the new epoch to the fleet (best-effort: the watermarks
	// are monotone and re-broadcast at completion; a node that misses
	// this one only lacks the installed marker, not safety).
	f.broadcastEpoch(ctx, target.id, retired)
	return nil
}

// AbortReconfigure stops an active migration, leaving the fleet in the
// mixed-epoch state it reached: every object keeps serving from
// whichever epoch it is in, nothing is fenced, and a later
// StartReconfigure towards the same target resumes the drain.
func (f *Fleet) AbortReconfigure() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mig = nil
}

// MigrationPending reports whether a migration has work left.
func (f *Fleet) MigrationPending() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mig != nil
}

// MigrationPending delegates to the fleet.
func (s *Store) MigrationPending() bool { return s.fleet.MigrationPending() }

// MigrationStep performs one unit of migration work: moves one object
// into the target epoch, or — once the queue is drained and no Put is
// still seeding into a previous epoch — fences the retired epochs at
// the nodes and completes. It returns done=true when no migration is
// active (or it just completed). A failed object move is re-queued and
// returned as the step's error; the caller retries. Safe for
// concurrent use; steps are serialized per object by the object lock.
func (f *Fleet) MigrationStep(ctx context.Context) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	f.mu.Lock()
	mig := f.mig
	if mig == nil {
		f.mu.Unlock()
		return true, nil
	}
	target := mig.target
	if len(mig.queue) == 0 {
		// Queue drained. Puts still seeding into a previous epoch keep
		// the fence back — their objects will be queued at
		// registration and drained by a later step.
		for id, n := range f.putsIn {
			if id != target.id && n > 0 {
				f.mu.Unlock()
				return false, nil
			}
		}
		f.mu.Unlock()
		// Fence every epoch before the target: a stale coordinator
		// still stamping them is refused by the nodes from here on.
		if err := f.broadcastEpoch(ctx, target.id, target.id-1); err != nil {
			return false, err
		}
		f.mu.Lock()
		if f.mig == mig {
			if target.id-1 > f.retired {
				f.retired = target.id - 1
			}
			f.mig = nil
		}
		f.mu.Unlock()
		return true, nil
	}
	mk := mig.queue[0]
	mig.queue = mig.queue[1:]
	delete(mig.queued, mk)
	st := f.tenants[mk.tenant]
	f.mu.Unlock()

	moved, err := st.migrateObject(ctx, mk.key, target)
	f.mu.Lock()
	if f.mig == mig {
		if err != nil {
			mig.fails++
			mig.enqueueLocked(mk.tenant, mk.key)
		} else {
			mig.done++
			mig.moved += moved
		}
	}
	f.mu.Unlock()
	if err != nil {
		return false, fmt.Errorf("migrating %s/%q: %w", mk.tenant, mk.key, err)
	}
	return false, nil
}

// MigrationStep delegates to the fleet — this (with MigrationPending)
// is the repairsched.MigrationSource surface the self-heal
// orchestrator's background pump drives.
func (s *Store) MigrationStep(ctx context.Context) (bool, error) {
	return s.fleet.MigrationStep(ctx)
}

// DriveMigration runs MigrationStep to completion: each failed object
// move is retried after a short pause, until the migration finishes or
// the context dies. Bound the wait with the context when nodes may be
// unrecoverable.
func (f *Fleet) DriveMigration(ctx context.Context) error {
	for {
		done, err := f.MigrationStep(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			if !sleepCtx(ctx, 10*time.Millisecond) {
				return ctx.Err()
			}
			continue
		}
		if done {
			return nil
		}
		// Yield between objects so the drain paces itself and the
		// queue-drained/waiting-on-puts probe does not spin.
		if !sleepCtx(ctx, time.Millisecond) {
			return ctx.Err()
		}
	}
}

// Reconfigure installs the target epoch and drives the migration to
// completion: when it returns nil, every object lives in the target
// epoch, the previous epochs are fenced at the nodes, and the fleet is
// fully converged. The resume path after an interrupted run is simply
// calling it again with the same spec.
func (f *Fleet) Reconfigure(ctx context.Context, spec ReconfigSpec) error {
	if err := f.StartReconfigure(ctx, spec); err != nil {
		return err
	}
	return f.DriveMigration(ctx)
}

// Reconfigure delegates to the fleet (reconfiguration scope is the
// cluster).
func (s *Store) Reconfigure(ctx context.Context, spec ReconfigSpec) error {
	return s.fleet.Reconfigure(ctx, spec)
}

// sleepCtx waits for d, returning false when the context dies first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// epochBlob is the opaque state broadcast alongside the watermarks —
// a JSON description of the installed epoch, for operators inspecting
// a node's persisted epoch state.
type epochBlob struct {
	Epoch   uint64 `json:"epoch"`
	Retired uint64 `json:"retired"`
	N       int    `json:"n"`
	K       int    `json:"k"`
	A       int    `json:"a"`
	B       int    `json:"b"`
	H       int    `json:"h"`
	W       int    `json:"w"`
	Active  []int  `json:"active"`
}

// broadcastEpoch pushes the (installed, retired) watermarks to every
// node client that persists epoch state. Per-node failures are
// tolerated — the watermarks are monotone maxima, so any later
// broadcast (or a resumed migration's) catches a node up; only a dead
// context fails the call.
func (f *Fleet) broadcastEpoch(ctx context.Context, installed, retired uint64) error {
	f.mu.Lock()
	clients := append([]core.NodeClient(nil), f.nodes...)
	ec := f.epochs[installed]
	f.mu.Unlock()
	var blob []byte
	if ec != nil {
		blob, _ = json.Marshal(epochBlob{
			Epoch: ec.id, Retired: retired, N: ec.n, K: ec.k,
			A: ec.shape.A, B: ec.shape.B, H: ec.shape.H, W: ec.w,
			Active: ec.active,
		})
	}
	for _, cl := range clients {
		es, ok := cl.(client.EpochSetter)
		if !ok {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = es.SetEpoch(ctx, installed, retired, blob)
	}
	return ctx.Err()
}

// migrateObject moves one object into the target epoch: under the
// object's exclusive lock, read it whole from its current stripes,
// seed fresh stripes on the target placement, swap the directory entry
// atomically, then drop the old chunks. Readers never block — they
// retry across the swap with refreshed metadata; writers and Delete
// hold the same lock, so nothing lands on the old stripes after the
// copy is taken. Returns the logical bytes moved (0 when the object is
// already in the target epoch or was deleted).
func (s *Store) migrateObject(ctx context.Context, key string, target *epochCfg) (int64, error) {
	f := s.fleet
	lk := f.objLock(s.tenant, key)
	lk.Lock()
	defer lk.Unlock()

	f.mu.Lock()
	m, ok := s.directory[key]
	if !ok || m.ec == target {
		f.mu.Unlock()
		return 0, nil
	}
	src := objectMeta{size: m.size, stripes: append([]uint64(nil), m.stripes...), ec: m.ec}
	f.mu.Unlock()

	// Read the object whole out of its current epoch. The exclusive
	// lock keeps the source stripes stable; quorum reads tolerate the
	// usual failures.
	bs := f.cfg.BlockSize
	nblocks := (src.size + bs - 1) / bs
	data := make([]byte, 0, nblocks*bs)
	for lb := 0; lb < nblocks; lb++ {
		sys, stripe, idx, err := s.locate(src, lb)
		if err != nil {
			return 0, err
		}
		blk, _, err := sys.ReadBlock(ctx, stripe, idx)
		if err != nil {
			return 0, fmt.Errorf("reading stripe %d block %d: %w", stripe, idx, err)
		}
		data = append(data, blk...)
	}

	// Seed the object onto the target placement, exactly like a Put
	// into the target epoch.
	capacity := target.capacity(bs)
	stripeCount := (src.size + capacity - 1) / capacity
	if stripeCount == 0 {
		stripeCount = 1
	}
	type planned struct {
		id     uint64
		sys    *core.System
		blocks [][]byte
		nodes  []int
	}
	f.mu.Lock()
	plan := make([]planned, 0, stripeCount)
	for i := 0; i < stripeCount; i++ {
		id := f.nextStripe
		f.nextStripe++
		nodes, err := target.place.Place(id, target.n)
		if err != nil {
			f.mu.Unlock()
			return 0, err
		}
		sys, err := f.systemFor(target, nodes)
		if err != nil {
			f.mu.Unlock()
			return 0, err
		}
		blocks := make([][]byte, target.k)
		for b := range blocks {
			block := make([]byte, bs)
			off := i*capacity + b*bs
			if off < len(data) {
				copy(block, data[off:])
			}
			blocks[b] = block
		}
		plan = append(plan, planned{id: id, sys: sys, blocks: blocks, nodes: nodes})
	}
	f.mu.Unlock()

	for i, p := range plan {
		if err := p.sys.SeedStripe(ctx, p.id, p.blocks); err != nil {
			// Unwind the partial seed; the object stays untouched in
			// its old epoch and the step is retried.
			dctx := context.Background()
			for _, d := range plan[:i+1] {
				for shard, node := range d.nodes {
					_ = f.nodeClient(node).DeleteChunk(dctx, client.ChunkID{Stripe: d.id, Shard: shard})
				}
				d.sys.ForgetStripe(d.id)
			}
			return 0, fmt.Errorf("seeding stripe %d: %w", p.id, err)
		}
	}

	// Cut over: one atomic swap of the directory entry and the stripe
	// tables. Readers that raced the swap find their old stripe gone
	// and retry with this fresh metadata.
	newStripes := make([]uint64, 0, len(plan))
	f.mu.Lock()
	for _, p := range plan {
		f.stripeSys[p.id] = p.sys
		f.stripeLoc[p.id] = p.nodes
		newStripes = append(newStripes, p.id)
	}
	oldSys := make(map[uint64]*core.System, len(src.stripes))
	oldLoc := make(map[uint64][]int, len(src.stripes))
	for _, stx := range src.stripes {
		oldSys[stx] = f.stripeSys[stx]
		oldLoc[stx] = f.stripeLoc[stx]
		delete(f.stripeSys, stx)
		delete(f.stripeLoc, stx)
	}
	m.stripes = newStripes
	m.ec = target
	f.mu.Unlock()

	// Drop the old epoch's chunks (best-effort, detached context —
	// stripe ids are never reused, and a node down right now keeps
	// orphan chunks exactly like after a Delete).
	dctx := context.Background()
	for _, stx := range src.stripes {
		for shard, node := range oldLoc[stx] {
			_ = f.nodeClient(node).DeleteChunk(dctx, client.ChunkID{Stripe: stx, Shard: shard})
		}
		if sys := oldSys[stx]; sys != nil {
			sys.ForgetStripe(stx)
		}
	}
	return int64(src.size), nil
}
