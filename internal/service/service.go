// Package service is the storage-system layer over the TRAP-ERC
// protocol: a keyed object store on a cluster larger than one stripe.
// Objects are chunked into stripes of k fixed-size blocks, each stripe
// is placed on n of the cluster's nodes by a placement strategy, and
// all reads and in-place updates go through the quorum protocol.
//
// This is the layer a storage virtualization middleware (the paper's
// target context) would embed: Put/Get/WriteAt over virtual-disk
// images, strict consistency per block, per-node repair after
// failures. The layer is transport-agnostic: it runs on any set of
// client.NodeClient implementations — the in-process simulator, or a
// fleet of network storage nodes.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"trapquorum/client"
	"trapquorum/internal/core"
	"trapquorum/internal/erasure"
	"trapquorum/internal/repairsched"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

// The store is the placement-aware repair target of the self-healing
// orchestrator.
var _ repairsched.Target = (*Store)(nil)

// Service-level errors.
var (
	ErrUnknownKey = errors.New("service: unknown key")
	ErrBadRange   = errors.New("service: range outside object")
	ErrExists     = errors.New("service: key already exists")
)

// Config parameterises a Store.
type Config struct {
	// N, K are the erasure-code parameters per stripe.
	N, K int
	// Shape and W parameterise the trapezoid quorum (see trapezoid).
	Shape trapezoid.Shape
	W     int
	// BlockSize is the fixed size of every data block, in bytes.
	BlockSize int
	// Placement maps stripes to cluster nodes; its node count must
	// be at least N.
	Placement placement.Strategy
	// DisableRollback reproduces the paper's Algorithm 1 verbatim:
	// failed writes leave their partial updates behind (see
	// core.Options).
	DisableRollback bool
	// Concurrency bounds the in-flight per-node RPCs of one quorum
	// operation, and the parallel per-stripe repairs of a node-wide
	// repair (0 = engine defaults; see core.Options).
	Concurrency int
	// CodingParallelism bounds the worker set the erasure data plane
	// fans block segments across. The zero value and 1 both keep
	// coding serial on the calling goroutine (matching the package
	// default); pass an explicit count — e.g. runtime.GOMAXPROCS(0) —
	// to fan segments out (see erasure.WithParallelism).
	CodingParallelism int
	// Hedge enables tail-latency hedging of read-path RPCs (see
	// core.HedgeConfig).
	Hedge core.HedgeConfig
}

// objectMeta records where an object lives.
type objectMeta struct {
	size    int
	stripes []uint64
}

// Store is a keyed erasure-coded object store with quorum consistency.
type Store struct {
	cfg   Config
	code  *erasure.Code
	tcfg  trapezoid.Config
	nodes []core.NodeClient // cluster node j's transport client

	mu         sync.Mutex
	directory  map[string]*objectMeta
	pending    map[string]bool         // keys reserved by in-flight Puts
	systems    map[string]*core.System // keyed by placement signature
	stripeSys  map[uint64]*core.System
	stripeLoc  map[uint64][]int // stripe -> cluster nodes per shard
	nextStripe uint64
}

// New builds a Store over the given cluster of node clients; nodes[j]
// is the transport to cluster node j. The cluster must have at least
// as many nodes as the placement strategy declares.
func New(nodes []core.NodeClient, cfg Config) (*Store, error) {
	if cfg.Placement == nil {
		return nil, errors.New("service: nil placement strategy")
	}
	if cfg.BlockSize < 1 {
		return nil, fmt.Errorf("service: block size %d invalid", cfg.BlockSize)
	}
	for j, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("service: node %d is nil", j)
		}
	}
	if len(nodes) < cfg.Placement.Nodes() {
		return nil, fmt.Errorf("service: cluster has %d nodes, placement expects %d",
			len(nodes), cfg.Placement.Nodes())
	}
	if cfg.Placement.Nodes() < cfg.N {
		return nil, fmt.Errorf("service: placement over %d nodes cannot hold %d shards",
			cfg.Placement.Nodes(), cfg.N)
	}
	if cfg.CodingParallelism < 0 {
		return nil, fmt.Errorf("service: coding parallelism %d invalid (need >= 0)", cfg.CodingParallelism)
	}
	codeOpts := []erasure.Option{}
	if cfg.CodingParallelism > 1 {
		codeOpts = append(codeOpts, erasure.WithParallelism(cfg.CodingParallelism))
	}
	code, err := erasure.New(cfg.N, cfg.K, codeOpts...)
	if err != nil {
		return nil, err
	}
	tcfg, err := trapezoid.NewConfig(cfg.Shape, cfg.W)
	if err != nil {
		return nil, err
	}
	if got, want := cfg.Shape.NbNodes(), cfg.N-cfg.K+1; got != want {
		return nil, fmt.Errorf("service: trapezoid holds %d nodes, need n-k+1 = %d", got, want)
	}
	return &Store{
		cfg:        cfg,
		code:       code,
		tcfg:       tcfg,
		nodes:      append([]core.NodeClient(nil), nodes...),
		directory:  make(map[string]*objectMeta),
		pending:    make(map[string]bool),
		systems:    make(map[string]*core.System),
		stripeSys:  make(map[uint64]*core.System),
		stripeLoc:  make(map[uint64][]int),
		nextStripe: 1,
	}, nil
}

// stripeCapacity returns the payload bytes one stripe holds.
func (s *Store) stripeCapacity() int { return s.cfg.K * s.cfg.BlockSize }

// systemFor returns (building if needed) the protocol instance bound
// to the given node placement. Caller holds s.mu.
func (s *Store) systemFor(nodes []int) (*core.System, error) {
	key := placementKey(nodes)
	if sys, ok := s.systems[key]; ok {
		return sys, nil
	}
	clients := make([]core.NodeClient, len(nodes))
	for shard, node := range nodes {
		clients[shard] = s.nodes[node]
	}
	sys, err := core.NewSystem(s.code, s.tcfg, clients, core.Options{
		DisableRollback: s.cfg.DisableRollback,
		Concurrency:     s.cfg.Concurrency,
		Hedge:           s.cfg.Hedge,
	})
	if err != nil {
		return nil, err
	}
	s.systems[key] = sys
	return sys, nil
}

func placementKey(nodes []int) string {
	var b strings.Builder
	for i, n := range nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	return b.String()
}

// Put stores data under key. The key must not exist (objects are
// immutable in extent; use WriteAt for in-place updates, or Delete
// then Put to replace). All placed nodes must be up for the initial
// seeding.
func (s *Store) Put(ctx context.Context, key string, data []byte) error {
	s.mu.Lock()
	if s.directory[key] != nil || s.pending[key] {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, key)
	}
	// Reserve the key so a concurrent Put of the same key fails with
	// ErrExists instead of silently overwriting the registration and
	// orphaning the loser's stripes.
	s.pending[key] = true
	// Every exit path must release the reservation: success replaces
	// it with the directory entry, failure frees the key for retry.
	defer func() {
		s.mu.Lock()
		delete(s.pending, key)
		s.mu.Unlock()
	}()
	capacity := s.stripeCapacity()
	stripeCount := (len(data) + capacity - 1) / capacity
	if stripeCount == 0 {
		stripeCount = 1 // empty objects still own one stripe for WriteAt growth semantics
	}
	type planned struct {
		id     uint64
		sys    *core.System
		blocks [][]byte
		nodes  []int
	}
	plan := make([]planned, 0, stripeCount)
	for i := 0; i < stripeCount; i++ {
		id := s.nextStripe
		s.nextStripe++
		nodes, err := s.cfg.Placement.Place(id, s.cfg.N)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		sys, err := s.systemFor(nodes)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		blocks := make([][]byte, s.cfg.K)
		for b := range blocks {
			block := make([]byte, s.cfg.BlockSize)
			off := i*capacity + b*s.cfg.BlockSize
			if off < len(data) {
				copy(block, data[off:])
			}
			blocks[b] = block
		}
		plan = append(plan, planned{id: id, sys: sys, blocks: blocks, nodes: nodes})
	}
	s.mu.Unlock()

	stripes := make([]uint64, 0, len(plan))
	for i, p := range plan {
		if err := p.sys.SeedStripe(ctx, p.id, p.blocks); err != nil {
			// Nothing of this Put must survive: the key was never
			// registered, so already-seeded stripes would otherwise
			// leak as unreachable chunks. Best-effort cleanup on a
			// detached context (the caller's may be dead).
			dctx := context.Background()
			for _, done := range plan[:i+1] {
				for shard, node := range done.nodes {
					_ = s.nodes[node].DeleteChunk(dctx, client.ChunkID{Stripe: done.id, Shard: shard})
				}
				done.sys.ForgetStripe(done.id)
			}
			return fmt.Errorf("stripe %d: %w", p.id, err)
		}
		stripes = append(stripes, p.id)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range plan {
		s.stripeSys[p.id] = p.sys
		s.stripeLoc[p.id] = p.nodes
	}
	s.directory[key] = &objectMeta{size: len(data), stripes: stripes}
	return nil
}

// meta returns a copy of the object's metadata.
func (s *Store) meta(key string) (objectMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.directory[key]
	if !ok {
		return objectMeta{}, fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	return objectMeta{size: m.size, stripes: append([]uint64(nil), m.stripes...)}, nil
}

// Get reads the whole object through quorum reads.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	m, err := s.meta(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, m.size)
	remaining := m.size
	for _, stripe := range m.stripes {
		s.mu.Lock()
		sys := s.stripeSys[stripe]
		s.mu.Unlock()
		if sys == nil {
			// The object was deleted concurrently.
			return nil, fmt.Errorf("%w: %q", ErrUnknownKey, key)
		}
		for b := 0; b < s.cfg.K && remaining > 0; b++ {
			data, _, err := sys.ReadBlock(ctx, stripe, b)
			if err != nil {
				return nil, fmt.Errorf("stripe %d block %d: %w", stripe, b, err)
			}
			take := len(data)
			if take > remaining {
				take = remaining
			}
			out = append(out, data[:take]...)
			remaining -= take
		}
	}
	return out, nil
}

// Size returns the object's byte size.
func (s *Store) Size(key string) (int, error) {
	m, err := s.meta(key)
	if err != nil {
		return 0, err
	}
	return m.size, nil
}

// Keys lists stored keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.directory))
	for k := range s.directory {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// locate maps a logical block index of an object to its stripe,
// in-stripe block index and owning system.
func (s *Store) locate(m objectMeta, logicalBlock int) (*core.System, uint64, int, error) {
	stripeIdx := logicalBlock / s.cfg.K
	if stripeIdx >= len(m.stripes) {
		return nil, 0, 0, fmt.Errorf("%w: block %d beyond object", ErrBadRange, logicalBlock)
	}
	stripe := m.stripes[stripeIdx]
	s.mu.Lock()
	sys := s.stripeSys[stripe]
	s.mu.Unlock()
	if sys == nil {
		// The object was deleted concurrently.
		return nil, 0, 0, fmt.Errorf("%w: stripe %d", ErrUnknownKey, stripe)
	}
	return sys, stripe, logicalBlock % s.cfg.K, nil
}

// ReadAt reads length bytes at the given offset through quorum reads
// of only the affected blocks.
func (s *Store) ReadAt(ctx context.Context, key string, offset, length int) ([]byte, error) {
	m, err := s.meta(key)
	if err != nil {
		return nil, err
	}
	if offset < 0 || length < 0 || offset+length > m.size {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBadRange, offset, offset+length, m.size)
	}
	out := make([]byte, 0, length)
	for length > 0 {
		logical := offset / s.cfg.BlockSize
		within := offset % s.cfg.BlockSize
		sys, stripe, idx, err := s.locate(m, logical)
		if err != nil {
			return nil, err
		}
		data, _, err := sys.ReadBlock(ctx, stripe, idx)
		if err != nil {
			return nil, fmt.Errorf("stripe %d block %d: %w", stripe, idx, err)
		}
		take := len(data) - within
		if take > length {
			take = length
		}
		out = append(out, data[within:within+take]...)
		offset += take
		length -= take
	}
	return out, nil
}

// WriteAt overwrites bytes [offset, offset+len(p)) in place through
// quorum writes: each affected block is read, patched and written via
// Algorithm 1, shipping only parity deltas. Writes cannot extend the
// object. A context abort between blocks leaves earlier blocks
// committed and later ones untouched (each block write is atomic; the
// multi-block span is not). Two WriteAt calls overlapping on the same
// block are independent read-modify-write cycles — last writer wins
// at block granularity; overlapping writers need coordination above
// this layer.
func (s *Store) WriteAt(ctx context.Context, key string, offset int, p []byte) error {
	m, err := s.meta(key)
	if err != nil {
		return err
	}
	if offset < 0 || offset+len(p) > m.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBadRange, offset, offset+len(p), m.size)
	}
	for len(p) > 0 {
		logical := offset / s.cfg.BlockSize
		within := offset % s.cfg.BlockSize
		sys, stripe, idx, err := s.locate(m, logical)
		if err != nil {
			return err
		}
		var patched []byte
		take := s.cfg.BlockSize - within
		if take > len(p) {
			take = len(p)
		}
		if within == 0 && take == s.cfg.BlockSize {
			// The write covers the whole block: no need to pay a
			// quorum read just to overwrite every byte of it.
			patched = p[:take]
		} else {
			data, _, err := sys.ReadBlock(ctx, stripe, idx)
			if err != nil {
				return fmt.Errorf("stripe %d block %d: %w", stripe, idx, err)
			}
			patched = append([]byte(nil), data...)
			copy(patched[within:], p[:take])
		}
		if err := sys.WriteBlock(ctx, stripe, idx, patched); err != nil {
			return fmt.Errorf("stripe %d block %d: %w", stripe, idx, err)
		}
		offset += take
		p = p[take:]
	}
	return nil
}

// Delete removes the object from the directory and best-effort deletes
// its chunks from the placed nodes (down nodes keep orphan chunks; a
// later repair or re-placement overwrites them). The context gates
// entry only: once the key is unregistered the chunk removal runs on
// a detached context, because stripe ids are never reused and chunks
// skipped on a dead context would be orphaned forever.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	m, ok := s.directory[key]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	delete(s.directory, key)
	stripes := append([]uint64(nil), m.stripes...)
	locs := make(map[uint64][]int, len(stripes))
	systems := make(map[uint64]*core.System, len(stripes))
	for _, st := range stripes {
		locs[st] = s.stripeLoc[st]
		systems[st] = s.stripeSys[st]
		delete(s.stripeSys, st)
		delete(s.stripeLoc, st)
	}
	s.mu.Unlock()
	dctx := context.Background()
	for _, st := range stripes {
		for shard, node := range locs[st] {
			_ = s.nodes[node].DeleteChunk(dctx, client.ChunkID{Stripe: st, Shard: shard})
		}
		if sys := systems[st]; sys != nil {
			sys.ForgetStripe(st)
		}
	}
	return nil
}

// RepairClusterNode rebuilds every stripe shard placed on the given
// cluster node (after the node returns, possibly with a fresh disk),
// running the per-stripe repairs in parallel with bounded fan-out. It
// returns how many chunks were rebuilt and the error of the
// lowest-numbered failing stripe.
func (s *Store) RepairClusterNode(ctx context.Context, node int) (int, error) {
	tasks := s.chunksOnNode(node)
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].stripe < tasks[j].stripe })
	repaired := 0
	errIdx := -1
	var firstErr error
	core.Fanout(ctx, core.BulkLimit(s.cfg.Concurrency), len(tasks), func(cctx context.Context, i int) (struct{}, error) {
		return struct{}{}, tasks[i].sys.RepairShard(cctx, tasks[i].stripe, tasks[i].shard)
	}, func(i int, _ struct{}, err error) bool {
		if err == nil {
			repaired++
			return true
		}
		if errIdx < 0 || i < errIdx {
			errIdx = i
			firstErr = fmt.Errorf("stripe %d shard %d: %w", tasks[i].stripe, tasks[i].shard, err)
		}
		return true
	})
	if firstErr != nil {
		// Report cancellation the way core.RepairNode does: the sweep
		// stopped because the context died, not because the stripe
		// degraded.
		if cerr := ctx.Err(); cerr != nil {
			return repaired, fmt.Errorf("stripe %d shard %d: %w", tasks[errIdx].stripe, tasks[errIdx].shard, cerr)
		}
	}
	return repaired, firstErr
}

// Scrub audits every stripe of the object read-only, reporting the
// freshest consistent version vector, stale/ahead/unreachable shards
// and byte-level parity mismatches per stripe. Pair with
// RepairClusterNode (or per-stripe repair) when it reports
// degradation.
func (s *Store) Scrub(ctx context.Context, key string) ([]core.ScrubReport, error) {
	m, err := s.meta(key)
	if err != nil {
		return nil, err
	}
	reports := make([]core.ScrubReport, 0, len(m.stripes))
	for _, stripe := range m.stripes {
		s.mu.Lock()
		sys := s.stripeSys[stripe]
		s.mu.Unlock()
		if sys == nil {
			// The object was deleted concurrently.
			return reports, fmt.Errorf("%w: %q", ErrUnknownKey, key)
		}
		rep, err := sys.ScrubStripe(ctx, stripe)
		if err != nil {
			return reports, fmt.Errorf("stripe %d: %w", stripe, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// StripesOf reports the stripe ids backing an object (diagnostics).
func (s *Store) StripesOf(key string) ([]uint64, error) {
	m, err := s.meta(key)
	if err != nil {
		return nil, err
	}
	return m.stripes, nil
}

// Metrics aggregates the protocol counters across every placement's
// protocol instance into one store-level snapshot.
func (s *Store) Metrics() core.MetricsSnapshot {
	s.mu.Lock()
	systems := make([]*core.System, 0, len(s.systems))
	for _, sys := range s.systems {
		systems = append(systems, sys)
	}
	s.mu.Unlock()
	var total core.MetricsSnapshot
	for _, sys := range systems {
		m := sys.Metrics()
		total.Writes += m.Writes
		total.FailedWrites += m.FailedWrites
		total.DirectReads += m.DirectReads
		total.DecodeReads += m.DecodeReads
		total.FailedReads += m.FailedReads
		total.Rollbacks += m.Rollbacks
		total.Repairs += m.Repairs
		total.HedgedRPCs += m.HedgedRPCs
	}
	return total
}

// chunkLoc names one chunk placed on a cluster node, carrying its
// stripe's placement and protocol instance.
type chunkLoc struct {
	stripe uint64
	shard  int
	nodes  []int
	sys    *core.System
}

// chunksOnNode lists every chunk the placement assigns to the given
// cluster node — the one traversal both the manual node repair and
// the self-heal planner build on.
func (s *Store) chunksOnNode(node int) []chunkLoc {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []chunkLoc
	for stripe, nodes := range s.stripeLoc {
		for shard, placed := range nodes {
			if placed == node {
				out = append(out, chunkLoc{stripe: stripe, shard: shard, nodes: nodes, sys: s.stripeSys[stripe]})
			}
		}
	}
	return out
}

// PlanNodeRepairs implements repairsched.Target: one repair task per
// chunk placed on the given cluster node, prioritised by how many of
// each stripe's placements the down predicate reports lost (a stripe
// missing two nodes is rebuilt before a stripe missing one).
func (s *Store) PlanNodeRepairs(node int, down func(int) bool) []repairsched.Task {
	entries := s.chunksOnNode(node)
	tasks := make([]repairsched.Task, 0, len(entries))
	for _, e := range entries {
		nodes := e.nodes
		lost := repairsched.LostCount(len(nodes), func(shard int) int { return nodes[shard] }, down)
		tasks = append(tasks, repairsched.Task{Stripe: e.stripe, Shard: e.shard, Node: node, Priority: lost})
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Priority != tasks[j].Priority {
			return tasks[i].Priority > tasks[j].Priority
		}
		if tasks[i].Stripe != tasks[j].Stripe {
			return tasks[i].Stripe < tasks[j].Stripe
		}
		return tasks[i].Shard < tasks[j].Shard
	})
	return tasks
}

// Repair implements repairsched.Target: rebuild one chunk through the
// version-guarded repair path. A stripe deleted since planning is a
// no-op success.
func (s *Store) Repair(ctx context.Context, t repairsched.Task) error {
	s.mu.Lock()
	sys := s.stripeSys[t.Stripe]
	s.mu.Unlock()
	if sys == nil {
		return nil
	}
	err := sys.RepairShard(ctx, t.Stripe, t.Shard)
	if errors.Is(err, core.ErrUnknownStripe) {
		return nil
	}
	return err
}

// Stripes implements repairsched.Target: every live stripe id, in
// ascending order.
func (s *Store) Stripes() []uint64 {
	s.mu.Lock()
	out := make([]uint64, 0, len(s.stripeLoc))
	for stripe := range s.stripeLoc {
		out = append(out, stripe)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ScrubStripe implements repairsched.Target: audit one stripe and
// return repair tasks for its repairable degradation — stale shards,
// plus shards the scrub could not reach on nodes the down predicate
// reports up (a wiped or corrupted disk behind a live process). Ahead
// shards are deliberately left alone: the guarded repair would refuse
// to regress them, and clearing failed-write residue is an operator
// decision (see core.RepairShardForce).
func (s *Store) ScrubStripe(ctx context.Context, stripe uint64, down func(int) bool) ([]repairsched.Task, error) {
	s.mu.Lock()
	sys := s.stripeSys[stripe]
	nodes := s.stripeLoc[stripe]
	s.mu.Unlock()
	if sys == nil {
		return nil, nil
	}
	rep, err := sys.ScrubStripe(ctx, stripe)
	if err != nil {
		if errors.Is(err, core.ErrUnknownStripe) {
			return nil, nil
		}
		return nil, err
	}
	return repairsched.DegradationTasks(stripe, len(nodes), rep.StaleShards, rep.UnreachableShards,
		func(shard int) int { return nodes[shard] }, down), nil
}
