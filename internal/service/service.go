// Package service is the storage-system layer over the TRAP-ERC
// protocol: a keyed object store on a cluster larger than one stripe.
// Objects are chunked into stripes of k fixed-size blocks, each stripe
// is placed on n of the cluster's nodes by a placement strategy, and
// all reads and in-place updates go through the quorum protocol.
//
// This is the layer a storage virtualization middleware (the paper's
// target context) would embed: Put/Get/WriteAt over virtual-disk
// images, strict consistency per block, per-node repair after
// failures. The layer is transport-agnostic: it runs on any set of
// client.NodeClient implementations — the in-process simulator, or a
// fleet of network storage nodes.
//
// # Multi-tenancy
//
// One Fleet owns the cluster substrate — the node clients, the
// protocol instances per placement, and the global stripe-id
// allocator — and any number of tenant Stores share it. Each Store is
// an isolated keyed namespace with its own directory, optional
// object-count/byte quotas, and per-tenant operation counters; the
// stripes of every tenant draw from the fleet's single allocator, so
// chunk ids never collide across tenants. Repair, scrub and the
// self-healing orchestrator operate at fleet scope: a node repair
// rebuilds every tenant's chunks placed there.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"trapquorum/client"
	"trapquorum/internal/core"
	"trapquorum/internal/erasure"
	"trapquorum/internal/repairsched"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

// Both the fleet and each tenant store are placement-aware repair
// targets of the self-healing orchestrator (the store delegates to
// its fleet: repair scope is the cluster, not the namespace).
var (
	_ repairsched.Target = (*Fleet)(nil)
	_ repairsched.Target = (*Store)(nil)
)

// Service-level errors.
var (
	ErrUnknownKey = errors.New("service: unknown key")
	ErrBadRange   = errors.New("service: range outside object")
	ErrExists     = errors.New("service: key already exists")
)

// Config parameterises a Fleet (and therefore every tenant Store on
// it).
type Config struct {
	// N, K are the erasure-code parameters per stripe.
	N, K int
	// Shape and W parameterise the trapezoid quorum (see trapezoid).
	Shape trapezoid.Shape
	W     int
	// BlockSize is the fixed size of every data block, in bytes.
	BlockSize int
	// Placement maps stripes to cluster nodes; its node count must
	// be at least N.
	Placement placement.Strategy
	// DisableRollback reproduces the paper's Algorithm 1 verbatim:
	// failed writes leave their partial updates behind (see
	// core.Options).
	DisableRollback bool
	// Concurrency bounds the in-flight per-node RPCs of one quorum
	// operation, and the parallel per-stripe repairs of a node-wide
	// repair (0 = engine defaults; see core.Options).
	Concurrency int
	// CodingParallelism bounds the worker set the erasure data plane
	// fans block segments across. The zero value and 1 both keep
	// coding serial on the calling goroutine (matching the package
	// default); pass an explicit count — e.g. runtime.GOMAXPROCS(0) —
	// to fan segments out (see erasure.WithParallelism).
	CodingParallelism int
	// Hedge enables tail-latency hedging of read-path RPCs (see
	// core.HedgeConfig).
	Hedge core.HedgeConfig
	// NodeGate, when non-nil, is consulted before every RPC with the
	// *cluster* node index (each protocol instance translates its
	// shard indices through its placement): false fails the node
	// locally with client.ErrNodeDown — the transport resilience
	// layer's circuit breakers plug in here (see core.Options.NodeGate).
	// Must be safe for concurrent use.
	NodeGate func(node int) bool
}

// Quota caps one tenant's namespace. A zero field is unlimited.
type Quota struct {
	// MaxObjects caps how many keys the tenant may hold at once
	// (including in-flight Puts).
	MaxObjects int64
	// MaxBytes caps the tenant's total logical object bytes
	// (including in-flight Puts). Parity overhead is not counted:
	// the quota is on the namespace the tenant sees, not the raw
	// disk the code expands it to.
	MaxBytes int64
}

// TenantMetrics is a snapshot of one tenant's operation counters and
// usage gauges. Counters are cumulative over the store's lifetime.
type TenantMetrics struct {
	// Puts..Scrubs count successful operations of each kind.
	Puts, Gets, ReadAts, WriteAts, Deletes, Scrubs int64
	// BytesIn counts logical bytes accepted by Put and WriteAt;
	// BytesOut counts logical bytes served by Get and ReadAt.
	BytesIn, BytesOut int64
	// QuotaRejections counts mutations refused by the tenant's quota.
	QuotaRejections int64
	// Objects and UsedBytes are the namespace's current size (gauges,
	// not counters).
	Objects, UsedBytes int64
}

// tenantCounters is the hot-path half of TenantMetrics: plain atomics
// so counting never takes the fleet lock.
type tenantCounters struct {
	puts, gets, readAts, writeAts, deletes, scrubs atomic.Int64
	bytesIn, bytesOut                              atomic.Int64
	quotaRejections                                atomic.Int64
}

// objectMeta records where an object lives: its stripes and the
// placement epoch that placed them. Every object is wholly in one
// epoch at a time — reconfiguration migrates it atomically (under the
// object's lock) from its old epoch's stripes to freshly seeded
// stripes in the new epoch.
type objectMeta struct {
	size    int
	stripes []uint64
	ec      *epochCfg
}

// Fleet is the shared substrate tenant stores run on: the cluster's
// node clients, the protocol instance per placement, the stripe
// tables and the global stripe-id allocator. One mutex guards all of
// it (including every tenant's directory): the layer's critical
// sections are directory bookkeeping only — quorum I/O never runs
// under the lock — so a single lock keeps cross-tenant invariants
// (unique stripe ids, shared placement tables) trivially correct.
type Fleet struct {
	cfg Config

	mu         sync.Mutex
	nodes      []core.NodeClient // cluster node j's transport client; grows under mu
	epochs     map[uint64]*epochCfg
	cur        *epochCfg // the epoch new objects are placed in
	retired    uint64    // highest epoch fenced off at the nodes
	mig        *migration
	putsIn     map[uint64]int // in-flight Put/PutReader count per epoch
	locks      map[string]*sync.RWMutex
	tenants    map[string]*Store
	systems    map[string]*core.System // keyed by epoch|placement signature
	stripeSys  map[uint64]*core.System
	stripeLoc  map[uint64][]int // stripe -> cluster nodes per shard
	nextStripe uint64

	// corruptFn, when set, receives the cluster node of every shard
	// the protocol observed serving corrupt bytes (the self-heal
	// monitor's ReportCorrupt). Every protocol instance routes its
	// per-shard observations here, translated through its placement.
	corruptFn atomic.Pointer[func(node int)]
}

// Store is one tenant's keyed erasure-coded object store with quorum
// consistency: an isolated namespace (directory, quota, counters)
// over a shared Fleet.
type Store struct {
	fleet  *Fleet
	tenant string
	quota  Quota

	// Guarded by fleet.mu.
	directory      map[string]*objectMeta
	pending        map[string]bool // keys reserved by in-flight Puts
	pendingObjects int64
	pendingBytes   int64
	usedBytes      int64

	ctr tenantCounters
}

// NewFleet builds the shared substrate over the given cluster of node
// clients; nodes[j] is the transport to cluster node j. The cluster
// must have at least as many nodes as the placement strategy declares.
func NewFleet(nodes []core.NodeClient, cfg Config) (*Fleet, error) {
	if cfg.Placement == nil {
		return nil, errors.New("service: nil placement strategy")
	}
	if cfg.BlockSize < 1 {
		return nil, fmt.Errorf("service: block size %d invalid", cfg.BlockSize)
	}
	for j, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("service: node %d is nil", j)
		}
	}
	if len(nodes) < cfg.Placement.Nodes() {
		return nil, fmt.Errorf("service: cluster has %d nodes, placement expects %d",
			len(nodes), cfg.Placement.Nodes())
	}
	if cfg.Placement.Nodes() < cfg.N {
		return nil, fmt.Errorf("service: placement over %d nodes cannot hold %d shards",
			cfg.Placement.Nodes(), cfg.N)
	}
	if cfg.CodingParallelism < 0 {
		return nil, fmt.Errorf("service: coding parallelism %d invalid (need >= 0)", cfg.CodingParallelism)
	}
	codeOpts := []erasure.Option{}
	if cfg.CodingParallelism > 1 {
		codeOpts = append(codeOpts, erasure.WithParallelism(cfg.CodingParallelism))
	}
	code, err := erasure.New(cfg.N, cfg.K, codeOpts...)
	if err != nil {
		return nil, err
	}
	tcfg, err := trapezoid.NewConfig(cfg.Shape, cfg.W)
	if err != nil {
		return nil, err
	}
	if got, want := cfg.Shape.NbNodes(), cfg.N-cfg.K+1; got != want {
		return nil, fmt.Errorf("service: trapezoid holds %d nodes, need n-k+1 = %d", got, want)
	}
	// The configuration becomes the fleet's first placement epoch. An
	// epoch-stamped placement.Map carries its own epoch and roster;
	// any other strategy starts at epoch 1 over the identity roster.
	epoch := uint64(1)
	var active []int
	if m, ok := cfg.Placement.(*placement.Map); ok {
		epoch = m.Epoch()
		active = m.Active()
	} else {
		active = make([]int, cfg.Placement.Nodes())
		for i := range active {
			active[i] = i
		}
	}
	ec := &epochCfg{
		id: epoch, n: cfg.N, k: cfg.K, shape: cfg.Shape, w: cfg.W,
		code: code, tcfg: tcfg, place: cfg.Placement, active: active,
	}
	retired := uint64(0)
	if epoch > 0 {
		retired = epoch - 1
	}
	return &Fleet{
		cfg:        cfg,
		nodes:      append([]core.NodeClient(nil), nodes...),
		epochs:     map[uint64]*epochCfg{epoch: ec},
		cur:        ec,
		retired:    retired,
		putsIn:     make(map[uint64]int),
		locks:      make(map[string]*sync.RWMutex),
		tenants:    make(map[string]*Store),
		systems:    make(map[string]*core.System),
		stripeSys:  make(map[uint64]*core.System),
		stripeLoc:  make(map[uint64][]int),
		nextStripe: 1,
	}, nil
}

// DefaultTenant is the namespace New binds single-tenant callers to.
const DefaultTenant = "default"

// New builds a single-tenant store — a Fleet with one namespace named
// DefaultTenant and no quota. It is the constructor the embedding
// library API uses; multi-tenant callers (the gateway tier) use
// NewFleet plus Tenant.
func New(nodes []core.NodeClient, cfg Config) (*Store, error) {
	fleet, err := NewFleet(nodes, cfg)
	if err != nil {
		return nil, err
	}
	return fleet.Tenant(DefaultTenant, Quota{})
}

// Tenant returns the named tenant's store, creating it (with the
// given quota) on first use. On an existing tenant the quota argument
// is ignored — the creation-time quota stands.
func (f *Fleet) Tenant(name string, quota Quota) (*Store, error) {
	if name == "" {
		return nil, errors.New("service: empty tenant name")
	}
	if quota.MaxObjects < 0 || quota.MaxBytes < 0 {
		return nil, fmt.Errorf("service: tenant %q: negative quota", name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.tenants[name]; ok {
		return s, nil
	}
	s := &Store{
		fleet:     f,
		tenant:    name,
		quota:     quota,
		directory: make(map[string]*objectMeta),
		pending:   make(map[string]bool),
	}
	f.tenants[name] = s
	return s, nil
}

// Tenants lists the fleet's tenant names in sorted order.
func (f *Fleet) Tenants() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.tenants))
	for name := range f.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TenantMetrics snapshots every tenant's counters and usage gauges.
func (f *Fleet) TenantMetrics() map[string]TenantMetrics {
	f.mu.Lock()
	stores := make([]*Store, 0, len(f.tenants))
	for _, s := range f.tenants {
		stores = append(stores, s)
	}
	f.mu.Unlock()
	out := make(map[string]TenantMetrics, len(stores))
	for _, s := range stores {
		out[s.tenant] = s.TenantMetrics()
	}
	return out
}

// TenantMetrics snapshots this tenant's counters and usage gauges.
func (s *Store) TenantMetrics() TenantMetrics {
	m := TenantMetrics{
		Puts:            s.ctr.puts.Load(),
		Gets:            s.ctr.gets.Load(),
		ReadAts:         s.ctr.readAts.Load(),
		WriteAts:        s.ctr.writeAts.Load(),
		Deletes:         s.ctr.deletes.Load(),
		Scrubs:          s.ctr.scrubs.Load(),
		BytesIn:         s.ctr.bytesIn.Load(),
		BytesOut:        s.ctr.bytesOut.Load(),
		QuotaRejections: s.ctr.quotaRejections.Load(),
	}
	s.fleet.mu.Lock()
	m.Objects = int64(len(s.directory))
	m.UsedBytes = s.usedBytes
	s.fleet.mu.Unlock()
	return m
}

// Tenant returns the namespace name this store serves.
func (s *Store) Tenant() string { return s.tenant }

// Fleet returns the shared substrate this store runs on.
func (s *Store) Fleet() *Fleet { return s.fleet }

// capacity returns the payload bytes one stripe holds in this epoch.
func (ec *epochCfg) capacity(blockSize int) int { return ec.k * blockSize }

// nodeClient returns cluster node j's transport, safely against a
// roster growing under reconfiguration.
func (f *Fleet) nodeClient(j int) core.NodeClient {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[j]
}

// systemFor returns (building if needed) the protocol instance bound
// to the given node placement under the given epoch's geometry. The
// epoch is part of the key — old and new instances coexist while a
// migration drains — and stamps every RPC of the instance, so retired
// epochs can be fenced at the nodes. Caller holds f.mu.
func (f *Fleet) systemFor(ec *epochCfg, nodes []int) (*core.System, error) {
	key := fmt.Sprintf("%d|%s", ec.id, placementKey(nodes))
	if sys, ok := f.systems[key]; ok {
		return sys, nil
	}
	clients := make([]core.NodeClient, len(nodes))
	for shard, node := range nodes {
		clients[shard] = f.nodes[node]
	}
	opts := core.Options{
		DisableRollback: f.cfg.DisableRollback,
		Concurrency:     f.cfg.Concurrency,
		Hedge:           f.cfg.Hedge,
		Epoch:           ec.id,
	}
	if gate := f.cfg.NodeGate; gate != nil {
		// The gate speaks cluster-node indices; the instance issues
		// shard indices. Translate through this placement.
		placedGate := append([]int(nil), nodes...)
		opts.NodeGate = func(shard int) bool {
			if shard < 0 || shard >= len(placedGate) {
				return true
			}
			return gate(placedGate[shard])
		}
	}
	sys, err := core.NewSystem(ec.code, ec.tcfg, clients, opts)
	if err != nil {
		return nil, err
	}
	// Route the instance's corruption observations to the fleet-level
	// handler, translated from shard index to cluster node through
	// this placement. Registered unconditionally: the handler pointer
	// is consulted at observation time, so SetCorruptionHandler works
	// whenever it is called relative to system creation.
	placed := append([]int(nil), nodes...)
	sys.SetCorruptionHandler(func(shard int) {
		if fn := f.corruptFn.Load(); fn != nil && shard >= 0 && shard < len(placed) {
			(*fn)(placed[shard])
		}
	})
	f.systems[key] = sys
	return sys, nil
}

// SetCorruptionHandler installs the fleet-wide corruption observer:
// fn receives the cluster node index of every shard any protocol
// instance caught serving bytes its peers' cross-checksum records
// disavow. The self-heal layer binds it to the health monitor's
// ReportCorrupt. A nil fn disables delivery. Safe to call at any
// time, concurrently with traffic.
func (f *Fleet) SetCorruptionHandler(fn func(node int)) {
	if fn == nil {
		f.corruptFn.Store(nil)
		return
	}
	f.corruptFn.Store(&fn)
}

// SetCorruptionHandler delegates to the fleet (corruption scope is
// the cluster).
func (s *Store) SetCorruptionHandler(fn func(node int)) { s.fleet.SetCorruptionHandler(fn) }

// objLock returns the per-object reconfiguration lock of one tenant
// key, creating it on first use. Writers (WriteAt) hold it shared,
// Delete and the migration's object move hold it exclusive — so a
// migration never copies an object while a write is landing on its old
// stripes, and no acked write can be lost at cutover. Lock entries are
// never removed: a lock resurrected for a re-created key must be the
// same lock any straggling holder still has, or two migrations could
// race on different locks for one key.
func (f *Fleet) objLock(tenant, key string) *sync.RWMutex {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := tenant + "\x00" + key
	l := f.locks[id]
	if l == nil {
		l = &sync.RWMutex{}
		f.locks[id] = l
	}
	return l
}

func placementKey(nodes []int) string {
	var b strings.Builder
	for i, n := range nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	return b.String()
}

// checkQuota enforces the tenant's limits against the namespace's
// committed plus in-flight footprint. Caller holds fleet.mu.
func (s *Store) checkQuota(addBytes int) error {
	if s.quota.MaxObjects > 0 && int64(len(s.directory))+s.pendingObjects+1 > s.quota.MaxObjects {
		s.ctr.quotaRejections.Add(1)
		return fmt.Errorf("%w: tenant %q holds %d of %d objects",
			client.ErrQuotaExceeded, s.tenant, int64(len(s.directory))+s.pendingObjects, s.quota.MaxObjects)
	}
	if s.quota.MaxBytes > 0 && s.usedBytes+s.pendingBytes+int64(addBytes) > s.quota.MaxBytes {
		s.ctr.quotaRejections.Add(1)
		return fmt.Errorf("%w: tenant %q uses %d of %d bytes, put of %d refused",
			client.ErrQuotaExceeded, s.tenant, s.usedBytes+s.pendingBytes, s.quota.MaxBytes, addBytes)
	}
	return nil
}

// Put stores data under key. The key must not exist (objects are
// immutable in extent; use WriteAt for in-place updates, or Delete
// then Put to replace). All placed nodes must be up for the initial
// seeding. A tenant quota that the new object would overflow fails
// the Put with client.ErrQuotaExceeded before any node is touched.
func (s *Store) Put(ctx context.Context, key string, data []byte) error {
	f := s.fleet
	f.mu.Lock()
	if s.directory[key] != nil || s.pending[key] {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, key)
	}
	if err := s.checkQuota(len(data)); err != nil {
		f.mu.Unlock()
		return err
	}
	// Reserve the key (and its quota footprint) so a concurrent Put of
	// the same key fails with ErrExists instead of silently overwriting
	// the registration and orphaning the loser's stripes. The epoch is
	// pinned here too, and counted in putsIn: a migration cannot fence
	// the epoch while this Put is still seeding into it.
	s.pending[key] = true
	s.pendingObjects++
	s.pendingBytes += int64(len(data))
	ec := f.cur
	f.putsIn[ec.id]++
	// Every exit path must release the reservation: success replaces
	// it with the directory entry, failure frees the key for retry.
	defer func() {
		f.mu.Lock()
		delete(s.pending, key)
		s.pendingObjects--
		s.pendingBytes -= int64(len(data))
		f.putsIn[ec.id]--
		f.mu.Unlock()
	}()
	capacity := ec.capacity(f.cfg.BlockSize)
	stripeCount := (len(data) + capacity - 1) / capacity
	if stripeCount == 0 {
		stripeCount = 1 // empty objects still own one stripe for WriteAt growth semantics
	}
	type planned struct {
		id     uint64
		sys    *core.System
		blocks [][]byte
		nodes  []int
	}
	plan := make([]planned, 0, stripeCount)
	for i := 0; i < stripeCount; i++ {
		id := f.nextStripe
		f.nextStripe++
		nodes, err := ec.place.Place(id, ec.n)
		if err != nil {
			f.mu.Unlock()
			return err
		}
		sys, err := f.systemFor(ec, nodes)
		if err != nil {
			f.mu.Unlock()
			return err
		}
		blocks := make([][]byte, ec.k)
		for b := range blocks {
			block := make([]byte, f.cfg.BlockSize)
			off := i*capacity + b*f.cfg.BlockSize
			if off < len(data) {
				copy(block, data[off:])
			}
			blocks[b] = block
		}
		plan = append(plan, planned{id: id, sys: sys, blocks: blocks, nodes: nodes})
	}
	f.mu.Unlock()

	stripes := make([]uint64, 0, len(plan))
	for i, p := range plan {
		if err := p.sys.SeedStripe(ctx, p.id, p.blocks); err != nil {
			// Nothing of this Put must survive: the key was never
			// registered, so already-seeded stripes would otherwise
			// leak as unreachable chunks. Best-effort cleanup on a
			// detached context (the caller's may be dead).
			dctx := context.Background()
			for _, done := range plan[:i+1] {
				for shard, node := range done.nodes {
					_ = f.nodeClient(node).DeleteChunk(dctx, client.ChunkID{Stripe: done.id, Shard: shard})
				}
				done.sys.ForgetStripe(done.id)
			}
			return fmt.Errorf("stripe %d: %w", p.id, err)
		}
		stripes = append(stripes, p.id)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range plan {
		f.stripeSys[p.id] = p.sys
		f.stripeLoc[p.id] = p.nodes
	}
	s.directory[key] = &objectMeta{size: len(data), stripes: stripes, ec: ec}
	s.usedBytes += int64(len(data))
	s.ctr.puts.Add(1)
	s.ctr.bytesIn.Add(int64(len(data)))
	// A reconfiguration may have started (or advanced) while this Put
	// was seeding into what is now a previous epoch: hand the freshly
	// registered object to the active migration so it is drained like
	// the rest. The migration cannot have completed — it waits for
	// putsIn of non-target epochs to reach zero, and ours is still held.
	if ec != f.cur && f.mig != nil {
		f.mig.enqueueLocked(s.tenant, key)
	}
	return nil
}

// meta returns a copy of the object's metadata.
func (s *Store) meta(key string) (objectMeta, error) {
	s.fleet.mu.Lock()
	defer s.fleet.mu.Unlock()
	m, ok := s.directory[key]
	if !ok {
		return objectMeta{}, fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	return objectMeta{size: m.size, stripes: append([]uint64(nil), m.stripes...), ec: m.ec}, nil
}

// Get reads the whole object through quorum reads.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	return s.GetAppend(ctx, key, nil)
}

// GetAppend reads the whole object through quorum reads, appending its
// bytes to dst (which may be nil) and returning the extended slice —
// the destination-buffer variant the gateway's pooled serve path uses:
// with enough capacity in dst, the service layer adds no allocation of
// its own.
func (s *Store) GetAppend(ctx context.Context, key string, dst []byte) ([]byte, error) {
	m, err := s.meta(key)
	if err != nil {
		return dst, err
	}
	out := dst
	remaining := m.size
	for logical := 0; remaining > 0; logical++ {
		data, err := s.readLogicalBlock(ctx, &m, key, logical)
		if err != nil {
			return dst, err
		}
		take := len(data)
		if take > remaining {
			take = remaining
		}
		out = append(out, data[:take]...)
		remaining -= take
	}
	s.ctr.gets.Add(1)
	s.ctr.bytesOut.Add(int64(m.size))
	return out, nil
}

// Size returns the object's byte size.
func (s *Store) Size(key string) (int, error) {
	m, err := s.meta(key)
	if err != nil {
		return 0, err
	}
	return m.size, nil
}

// Keys lists stored keys in sorted order.
func (s *Store) Keys() []string {
	s.fleet.mu.Lock()
	defer s.fleet.mu.Unlock()
	out := make([]string, 0, len(s.directory))
	for k := range s.directory {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// locate maps a logical block index of an object to its stripe,
// in-stripe block index and owning system. The logical-block↔byte
// mapping (BlockSize) is epoch-invariant; how logical blocks group
// into stripes (k) follows the object's epoch.
func (s *Store) locate(m objectMeta, logicalBlock int) (*core.System, uint64, int, error) {
	f := s.fleet
	k := m.ec.k
	stripeIdx := logicalBlock / k
	if stripeIdx >= len(m.stripes) {
		return nil, 0, 0, fmt.Errorf("%w: block %d beyond object", ErrBadRange, logicalBlock)
	}
	stripe := m.stripes[stripeIdx]
	f.mu.Lock()
	sys := f.stripeSys[stripe]
	f.mu.Unlock()
	if sys == nil {
		// The object was deleted — or migrated to another epoch —
		// concurrently; the caller refreshes its metadata to tell which.
		return nil, 0, 0, fmt.Errorf("%w: stripe %d", ErrUnknownKey, stripe)
	}
	return sys, stripe, logicalBlock % k, nil
}

// readLogicalBlock reads one logical block of the object, retrying
// with refreshed metadata when a concurrent migration moved the object
// between epochs mid-read (the old stripes vanish; the same logical
// block is re-read from the new ones — the byte mapping is
// epoch-invariant). When the metadata did not change, the failure is
// real and surfaces after a single attempt, so read error latency is
// untouched outside reconfigurations. On a successful retry *m is left
// refreshed for the caller's next blocks.
func (s *Store) readLogicalBlock(ctx context.Context, m *objectMeta, key string, logical int) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		sys, stripe, idx, err := s.locate(*m, logical)
		if err == nil {
			var data []byte
			data, _, err = sys.ReadBlock(ctx, stripe, idx)
			if err == nil {
				return data, nil
			}
			err = fmt.Errorf("stripe %d block %d: %w", stripe, idx, err)
		}
		if attempt >= 2 {
			return nil, err
		}
		fresh, merr := s.meta(key)
		if merr != nil {
			return nil, merr
		}
		if fresh.ec == m.ec {
			// Placement unchanged: the error is not a cutover artifact.
			return nil, err
		}
		*m = fresh
	}
}

// ReadAt reads length bytes at the given offset through quorum reads
// of only the affected blocks.
func (s *Store) ReadAt(ctx context.Context, key string, offset, length int) ([]byte, error) {
	out, err := s.ReadAtAppend(ctx, key, offset, length, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAtAppend reads length bytes at the given offset, appending them
// to dst (which may be nil) and returning the extended slice — the
// destination-buffer variant of ReadAt (see GetAppend).
func (s *Store) ReadAtAppend(ctx context.Context, key string, offset, length int, dst []byte) ([]byte, error) {
	f := s.fleet
	m, err := s.meta(key)
	if err != nil {
		return dst, err
	}
	if offset < 0 || length < 0 || offset+length > m.size {
		return dst, fmt.Errorf("%w: [%d,%d) of %d", ErrBadRange, offset, offset+length, m.size)
	}
	out := out0(dst, length)
	served := length
	for length > 0 {
		logical := offset / f.cfg.BlockSize
		within := offset % f.cfg.BlockSize
		data, err := s.readLogicalBlock(ctx, &m, key, logical)
		if err != nil {
			return dst, err
		}
		take := len(data) - within
		if take > length {
			take = length
		}
		out = append(out, data[within:within+take]...)
		offset += take
		length -= take
	}
	s.ctr.readAts.Add(1)
	s.ctr.bytesOut.Add(int64(served))
	return out, nil
}

// out0 sizes the append destination: reuse dst when it exists,
// otherwise start a fresh slice with the exact capacity.
func out0(dst []byte, length int) []byte {
	if dst == nil {
		return make([]byte, 0, length)
	}
	return dst
}

// WriteAt overwrites bytes [offset, offset+len(p)) in place through
// quorum writes: each affected block is read, patched and written via
// Algorithm 1, shipping only parity deltas. Writes cannot extend the
// object. A context abort between blocks leaves earlier blocks
// committed and later ones untouched (each block write is atomic; the
// multi-block span is not). Two WriteAt calls overlapping on the same
// block are independent read-modify-write cycles — last writer wins
// at block granularity; overlapping writers need coordination above
// this layer.
func (s *Store) WriteAt(ctx context.Context, key string, offset int, p []byte) error {
	f := s.fleet
	// Hold the object's reconfiguration lock shared for the whole
	// multi-block span: a migration (which takes it exclusive) can
	// never copy the object while this write is landing, so no acked
	// byte is left behind on retired stripes. Concurrent WriteAt calls
	// all take it shared — their mutual semantics are unchanged.
	lk := f.objLock(s.tenant, key)
	lk.RLock()
	defer lk.RUnlock()
	m, err := s.meta(key)
	if err != nil {
		return err
	}
	if offset < 0 || offset+len(p) > m.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBadRange, offset, offset+len(p), m.size)
	}
	written := len(p)
	for len(p) > 0 {
		logical := offset / f.cfg.BlockSize
		within := offset % f.cfg.BlockSize
		sys, stripe, idx, err := s.locate(m, logical)
		if err != nil {
			return err
		}
		var patched []byte
		take := f.cfg.BlockSize - within
		if take > len(p) {
			take = len(p)
		}
		if within == 0 && take == f.cfg.BlockSize {
			// The write covers the whole block: no need to pay a
			// quorum read just to overwrite every byte of it.
			patched = p[:take]
		} else {
			data, _, err := sys.ReadBlock(ctx, stripe, idx)
			if err != nil {
				return fmt.Errorf("stripe %d block %d: %w", stripe, idx, err)
			}
			patched = append([]byte(nil), data...)
			copy(patched[within:], p[:take])
		}
		if err := sys.WriteBlock(ctx, stripe, idx, patched); err != nil {
			return fmt.Errorf("stripe %d block %d: %w", stripe, idx, err)
		}
		offset += take
		p = p[take:]
	}
	s.ctr.writeAts.Add(1)
	s.ctr.bytesIn.Add(int64(written))
	return nil
}

// Delete removes the object from the directory and best-effort deletes
// its chunks from the placed nodes (down nodes keep orphan chunks; a
// later repair or re-placement overwrites them). The context gates
// entry only: once the key is unregistered the chunk removal runs on
// a detached context, because stripe ids are never reused and chunks
// skipped on a dead context would be orphaned forever.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f := s.fleet
	// Exclusive object lock: a migration mid-copy of this object holds
	// the same lock, so Delete never races the cutover swap.
	lk := f.objLock(s.tenant, key)
	lk.Lock()
	defer lk.Unlock()
	f.mu.Lock()
	m, ok := s.directory[key]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	delete(s.directory, key)
	s.usedBytes -= int64(m.size)
	stripes := append([]uint64(nil), m.stripes...)
	locs := make(map[uint64][]int, len(stripes))
	systems := make(map[uint64]*core.System, len(stripes))
	for _, st := range stripes {
		locs[st] = f.stripeLoc[st]
		systems[st] = f.stripeSys[st]
		delete(f.stripeSys, st)
		delete(f.stripeLoc, st)
	}
	f.mu.Unlock()
	dctx := context.Background()
	for _, st := range stripes {
		for shard, node := range locs[st] {
			_ = f.nodeClient(node).DeleteChunk(dctx, client.ChunkID{Stripe: st, Shard: shard})
		}
		if sys := systems[st]; sys != nil {
			sys.ForgetStripe(st)
		}
	}
	s.ctr.deletes.Add(1)
	return nil
}

// RepairClusterNode rebuilds every stripe shard placed on the given
// cluster node — across all tenants — running the per-stripe repairs
// in parallel with bounded fan-out. It returns how many chunks were
// rebuilt and the error of the lowest-numbered failing stripe.
func (f *Fleet) RepairClusterNode(ctx context.Context, node int) (int, error) {
	tasks := f.chunksOnNode(node)
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].stripe < tasks[j].stripe })
	repaired := 0
	errIdx := -1
	var firstErr error
	core.Fanout(ctx, core.BulkLimit(f.cfg.Concurrency), len(tasks), func(cctx context.Context, i int) (struct{}, error) {
		return struct{}{}, tasks[i].sys.RepairShard(cctx, tasks[i].stripe, tasks[i].shard)
	}, func(i int, _ struct{}, err error) bool {
		if err == nil {
			repaired++
			return true
		}
		if errIdx < 0 || i < errIdx {
			errIdx = i
			firstErr = fmt.Errorf("stripe %d shard %d: %w", tasks[i].stripe, tasks[i].shard, err)
		}
		return true
	})
	if firstErr != nil {
		// Report cancellation the way core.RepairNode does: the sweep
		// stopped because the context died, not because the stripe
		// degraded.
		if cerr := ctx.Err(); cerr != nil {
			return repaired, fmt.Errorf("stripe %d shard %d: %w", tasks[errIdx].stripe, tasks[errIdx].shard, cerr)
		}
	}
	return repaired, firstErr
}

// RepairClusterNode delegates to the fleet: repair scope is the
// cluster, so repairing "through" any tenant rebuilds every tenant's
// chunks on the node.
func (s *Store) RepairClusterNode(ctx context.Context, node int) (int, error) {
	return s.fleet.RepairClusterNode(ctx, node)
}

// Scrub audits every stripe of the object read-only, reporting the
// freshest consistent version vector, stale/ahead/unreachable shards
// and byte-level parity mismatches per stripe. Pair with
// RepairClusterNode (or per-stripe repair) when it reports
// degradation.
func (s *Store) Scrub(ctx context.Context, key string) ([]core.ScrubReport, error) {
	f := s.fleet
	for attempt := 0; ; attempt++ {
		m, err := s.meta(key)
		if err != nil {
			return nil, err
		}
		reports := make([]core.ScrubReport, 0, len(m.stripes))
		stale := false
		for _, stripe := range m.stripes {
			f.mu.Lock()
			sys := f.stripeSys[stripe]
			f.mu.Unlock()
			if sys == nil {
				// The object was deleted or migrated concurrently; the
				// meta refetch above distinguishes the two on retry.
				stale = true
				break
			}
			rep, err := sys.ScrubStripe(ctx, stripe)
			if err != nil {
				if errors.Is(err, core.ErrUnknownStripe) {
					stale = true
					break
				}
				return reports, fmt.Errorf("stripe %d: %w", stripe, err)
			}
			reports = append(reports, rep)
		}
		if !stale {
			s.ctr.scrubs.Add(1)
			return reports, nil
		}
		if attempt >= 2 {
			return nil, fmt.Errorf("%w: %q", ErrUnknownKey, key)
		}
	}
}

// StripesOf reports the stripe ids backing an object (diagnostics).
func (s *Store) StripesOf(key string) ([]uint64, error) {
	m, err := s.meta(key)
	if err != nil {
		return nil, err
	}
	return m.stripes, nil
}

// Metrics aggregates the protocol counters across every placement's
// protocol instance into one fleet-level snapshot.
func (f *Fleet) Metrics() core.MetricsSnapshot {
	f.mu.Lock()
	systems := make([]*core.System, 0, len(f.systems))
	for _, sys := range f.systems {
		systems = append(systems, sys)
	}
	f.mu.Unlock()
	var total core.MetricsSnapshot
	for _, sys := range systems {
		m := sys.Metrics()
		total.Writes += m.Writes
		total.FailedWrites += m.FailedWrites
		total.DirectReads += m.DirectReads
		total.DecodeReads += m.DecodeReads
		total.FailedReads += m.FailedReads
		total.Rollbacks += m.Rollbacks
		total.Repairs += m.Repairs
		total.HedgedRPCs += m.HedgedRPCs
		total.CorruptShards += m.CorruptShards
	}
	return total
}

// Metrics delegates to the fleet: the protocol counters are shared
// substrate, not per-tenant state (per-tenant counters live in
// TenantMetrics).
func (s *Store) Metrics() core.MetricsSnapshot { return s.fleet.Metrics() }

// chunkLoc names one chunk placed on a cluster node, carrying its
// stripe's placement and protocol instance.
type chunkLoc struct {
	stripe uint64
	shard  int
	nodes  []int
	sys    *core.System
}

// chunksOnNode lists every chunk the placement assigns to the given
// cluster node — the one traversal both the manual node repair and
// the self-heal planner build on.
func (f *Fleet) chunksOnNode(node int) []chunkLoc {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []chunkLoc
	for stripe, nodes := range f.stripeLoc {
		for shard, placed := range nodes {
			if placed == node {
				out = append(out, chunkLoc{stripe: stripe, shard: shard, nodes: nodes, sys: f.stripeSys[stripe]})
			}
		}
	}
	return out
}

// PlanNodeRepairs implements repairsched.Target: one repair task per
// chunk placed on the given cluster node, prioritised by how many of
// each stripe's placements the down predicate reports lost (a stripe
// missing two nodes is rebuilt before a stripe missing one).
func (f *Fleet) PlanNodeRepairs(node int, down func(int) bool) []repairsched.Task {
	entries := f.chunksOnNode(node)
	tasks := make([]repairsched.Task, 0, len(entries))
	for _, e := range entries {
		nodes := e.nodes
		lost := repairsched.LostCount(len(nodes), func(shard int) int { return nodes[shard] }, down)
		tasks = append(tasks, repairsched.Task{Stripe: e.stripe, Shard: e.shard, Node: node, Priority: lost})
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Priority != tasks[j].Priority {
			return tasks[i].Priority > tasks[j].Priority
		}
		if tasks[i].Stripe != tasks[j].Stripe {
			return tasks[i].Stripe < tasks[j].Stripe
		}
		return tasks[i].Shard < tasks[j].Shard
	})
	return tasks
}

// PlanNodeRepairs delegates to the fleet (repair scope is the
// cluster).
func (s *Store) PlanNodeRepairs(node int, down func(int) bool) []repairsched.Task {
	return s.fleet.PlanNodeRepairs(node, down)
}

// Repair implements repairsched.Target: rebuild one chunk through the
// version-guarded repair path. A stripe deleted since planning is a
// no-op success.
func (f *Fleet) Repair(ctx context.Context, t repairsched.Task) error {
	f.mu.Lock()
	sys := f.stripeSys[t.Stripe]
	f.mu.Unlock()
	if sys == nil {
		return nil
	}
	err := sys.RepairShard(ctx, t.Stripe, t.Shard)
	if errors.Is(err, core.ErrUnknownStripe) {
		return nil
	}
	return err
}

// Repair delegates to the fleet (repair scope is the cluster).
func (s *Store) Repair(ctx context.Context, t repairsched.Task) error {
	return s.fleet.Repair(ctx, t)
}

// Stripes implements repairsched.Target: every live stripe id across
// all tenants, in ascending order.
func (f *Fleet) Stripes() []uint64 {
	f.mu.Lock()
	out := make([]uint64, 0, len(f.stripeLoc))
	for stripe := range f.stripeLoc {
		out = append(out, stripe)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stripes delegates to the fleet (scrub scope is the cluster).
func (s *Store) Stripes() []uint64 { return s.fleet.Stripes() }

// ScrubStripe implements repairsched.Target: audit one stripe and
// return repair tasks for its repairable degradation — stale shards,
// plus shards the scrub could not reach on nodes the down predicate
// reports up (a wiped or corrupted disk behind a live process). Ahead
// shards are deliberately left alone: the guarded repair would refuse
// to regress them, and clearing failed-write residue is an operator
// decision (see core.RepairShardForce).
func (f *Fleet) ScrubStripe(ctx context.Context, stripe uint64, down func(int) bool) ([]repairsched.Task, error) {
	f.mu.Lock()
	sys := f.stripeSys[stripe]
	nodes := f.stripeLoc[stripe]
	f.mu.Unlock()
	if sys == nil {
		return nil, nil
	}
	rep, err := sys.ScrubStripe(ctx, stripe)
	if err != nil {
		if errors.Is(err, core.ErrUnknownStripe) {
			return nil, nil
		}
		return nil, err
	}
	return repairsched.DegradationTasks(stripe, len(nodes), rep.StaleShards, rep.UnreachableShards,
		rep.CorruptShards, func(shard int) int { return nodes[shard] }, down), nil
}

// ScrubStripe delegates to the fleet (scrub scope is the cluster).
func (s *Store) ScrubStripe(ctx context.Context, stripe uint64, down func(int) bool) ([]repairsched.Task, error) {
	return s.fleet.ScrubStripe(ctx, stripe, down)
}
