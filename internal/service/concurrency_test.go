package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentClients drives Put/Get/ReadAt/WriteAt from many
// goroutines against one store (run under -race in CI): per-key
// last-writer-wins consistency must hold because each key has a
// single owner goroutine, while the cluster, directory and protocol
// instances are shared.
func TestConcurrentClients(t *testing.T) {
	store, _ := newTestStore(t)
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			key := fmt.Sprintf("obj-%d", c)
			payload := make([]byte, 700+137*c)
			r.Read(payload)
			if err := store.Put(context.Background(), key, payload); err != nil {
				errs <- fmt.Errorf("%s put: %w", key, err)
				return
			}
			for round := 0; round < 15; round++ {
				switch round % 3 {
				case 0:
					got, err := store.Get(context.Background(), key)
					if err != nil {
						errs <- fmt.Errorf("%s get: %w", key, err)
						return
					}
					if !bytes.Equal(got, payload) {
						errs <- fmt.Errorf("%s corrupted on round %d", key, round)
						return
					}
				case 1:
					off := r.Intn(len(payload) - 50)
					patch := make([]byte, 50)
					r.Read(patch)
					if err := store.WriteAt(context.Background(), key, off, patch); err != nil {
						errs <- fmt.Errorf("%s writeAt: %w", key, err)
						return
					}
					copy(payload[off:], patch)
				case 2:
					off := r.Intn(len(payload) - 20)
					got, err := store.ReadAt(context.Background(), key, off, 20)
					if err != nil {
						errs <- fmt.Errorf("%s readAt: %w", key, err)
						return
					}
					if !bytes.Equal(got, payload[off:off+20]) {
						errs <- fmt.Errorf("%s readAt stale on round %d", key, round)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(store.Keys()); got != clients {
		t.Fatalf("keys = %d, want %d", got, clients)
	}
}
