package service

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"trapquorum/client"
	"trapquorum/internal/sim"
	"trapquorum/internal/trapezoid"
	"trapquorum/placement"
)

func newTestFleet(t testing.TB) (*Fleet, *sim.Cluster) {
	t.Helper()
	cluster, err := sim.NewCluster(testClusterSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	strat, err := placement.NewRing(testClusterSize, 16)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet(clientsOf(cluster), Config{
		N: 15, K: 8,
		Shape: trapezoid.Shape{A: 2, B: 3, H: 1}, W: 3,
		BlockSize: testBlockSize,
		Placement: strat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fleet, cluster
}

// TestTenantIsolation: two tenants on one fleet see disjoint
// namespaces — same key, different objects, and neither tenant's
// Keys/Get can observe the other's.
func TestTenantIsolation(t *testing.T) {
	fleet, _ := newTestFleet(t)
	ctx := context.Background()
	alpha, err := fleet.Tenant("alpha", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	beta, err := fleet.Tenant("beta", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	if err := alpha.Put(ctx, "disk.img", []byte("alpha bytes")); err != nil {
		t.Fatal(err)
	}
	if err := beta.Put(ctx, "disk.img", []byte("beta bytes, different")); err != nil {
		t.Fatal(err)
	}
	got, err := alpha.Get(ctx, "disk.img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("alpha bytes")) {
		t.Fatalf("alpha read %q", got)
	}
	got, err = beta.Get(ctx, "disk.img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("beta bytes, different")) {
		t.Fatalf("beta read %q", got)
	}
	if err := alpha.Delete(ctx, "disk.img"); err != nil {
		t.Fatal(err)
	}
	// Beta's object must survive alpha's delete of the same key.
	if _, err := beta.Get(ctx, "disk.img"); err != nil {
		t.Fatalf("beta object lost: %v", err)
	}
	if _, err := alpha.Get(ctx, "disk.img"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v", err)
	}
	names := fleet.Tenants()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("tenants = %v", names)
	}
}

// TestTenantIdempotent: Tenant is create-or-get; the same name
// returns the same store and keeps the creation-time quota.
func TestTenantIdempotent(t *testing.T) {
	fleet, _ := newTestFleet(t)
	a, err := fleet.Tenant("t", Quota{MaxObjects: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fleet.Tenant("t", Quota{MaxObjects: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Tenant returned distinct stores for one name")
	}
	if a.quota.MaxObjects != 1 {
		t.Fatalf("quota = %+v, creation-time quota must stand", a.quota)
	}
	if _, err := fleet.Tenant("", Quota{}); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if _, err := fleet.Tenant("x", Quota{MaxBytes: -1}); err == nil {
		t.Fatal("negative quota accepted")
	}
}

// TestQuotaObjects: the object-count quota refuses the Put that would
// overflow it, with client.ErrQuotaExceeded, before touching nodes.
func TestQuotaObjects(t *testing.T) {
	fleet, _ := newTestFleet(t)
	ctx := context.Background()
	s, err := fleet.Tenant("capped", Quota{MaxObjects: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "c", []byte("3")); !errors.Is(err, client.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	// Delete frees the slot.
	if err := s.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	m := s.TenantMetrics()
	if m.QuotaRejections != 1 {
		t.Fatalf("QuotaRejections = %d, want 1", m.QuotaRejections)
	}
	if m.Objects != 2 {
		t.Fatalf("Objects = %d, want 2", m.Objects)
	}
}

// TestQuotaBytes: the byte quota counts logical object bytes, is
// checked against committed + in-flight usage, and is released by
// Delete.
func TestQuotaBytes(t *testing.T) {
	fleet, _ := newTestFleet(t)
	ctx := context.Background()
	s, err := fleet.Tenant("capped", Quota{MaxBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "a", make([]byte, 600)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "b", make([]byte, 600)); !errors.Is(err, client.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if err := s.Put(ctx, "b", make([]byte, 400)); err != nil {
		t.Fatal(err)
	}
	if m := s.TenantMetrics(); m.UsedBytes != 1000 {
		t.Fatalf("UsedBytes = %d, want 1000", m.UsedBytes)
	}
	if err := s.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "c", make([]byte, 600)); err != nil {
		t.Fatalf("put after delete: %v", err)
	}
}

// TestStripeIDsUniqueAcrossTenants: stripes of different tenants draw
// from the fleet's single allocator — no chunk-id collisions.
func TestStripeIDsUniqueAcrossTenants(t *testing.T) {
	fleet, _ := newTestFleet(t)
	ctx := context.Background()
	seen := map[uint64]string{}
	for _, name := range []string{"a", "b", "c"} {
		s, err := fleet.Tenant(name, Quota{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(ctx, "obj", make([]byte, 3*testBlockSize*8)); err != nil {
			t.Fatal(err)
		}
		stripes, err := s.StripesOf("obj")
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stripes {
			if owner, dup := seen[st]; dup {
				t.Fatalf("stripe %d owned by both %q and %q", st, owner, name)
			}
			seen[st] = name
		}
	}
}

// TestFleetRepairSpansTenants: a node repair rebuilds chunks of every
// tenant placed there, and reads of all tenants succeed after losing
// the node's disk.
func TestFleetRepairSpansTenants(t *testing.T) {
	fleet, cluster := newTestFleet(t)
	ctx := context.Background()
	payloads := map[string][]byte{}
	for _, name := range []string{"a", "b"} {
		s, err := fleet.Tenant(name, Quota{})
		if err != nil {
			t.Fatal(err)
		}
		p := bytes.Repeat([]byte(name), 1500)
		payloads[name] = p
		if err := s.Put(ctx, "obj", p); err != nil {
			t.Fatal(err)
		}
	}
	victim := 3
	cluster.Crash(victim)
	cluster.Restart(victim)
	if err := cluster.Node(victim).Wipe(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.RepairClusterNode(ctx, victim); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		s, _ := fleet.Tenant(name, Quota{})
		got, err := s.Get(ctx, "obj")
		if err != nil {
			t.Fatalf("tenant %s: %v", name, err)
		}
		if !bytes.Equal(got, payloads[name]) {
			t.Fatalf("tenant %s: post-repair mismatch", name)
		}
	}
}

// TestTenantMetricsCounters: the per-tenant counters track each
// operation kind and the byte totals.
func TestTenantMetricsCounters(t *testing.T) {
	fleet, _ := newTestFleet(t)
	ctx := context.Background()
	s, err := fleet.Tenant("m", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200)
	if err := s.Put(ctx, "k", data); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAt(ctx, "k", 10, 50); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(ctx, "k", 0, make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scrub(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	m := s.TenantMetrics()
	want := TenantMetrics{
		Puts: 1, Gets: 1, ReadAts: 1, WriteAts: 1, Deletes: 1, Scrubs: 1,
		BytesIn: 230, BytesOut: 250,
	}
	if m != want {
		t.Fatalf("metrics = %+v, want %+v", m, want)
	}
	all := fleet.TenantMetrics()
	if all["m"] != want {
		t.Fatalf("fleet metrics[m] = %+v", all["m"])
	}
}

// TestGetAppendReusesBuffer: with enough capacity in dst, GetAppend
// fills the caller's buffer instead of allocating a fresh one.
func TestGetAppendReusesBuffer(t *testing.T) {
	store, _ := newTestStore(t)
	ctx := context.Background()
	payload := bytes.Repeat([]byte{0x5a}, 500)
	if err := store.Put(ctx, "k", payload); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 1024)
	out, err := store.GetAppend(ctx, "k", dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Fatal("GetAppend content mismatch")
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("GetAppend re-allocated despite sufficient capacity")
	}
	// ReadAtAppend likewise.
	out2, err := store.ReadAtAppend(ctx, "k", 100, 100, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2, payload[100:200]) {
		t.Fatal("ReadAtAppend content mismatch")
	}
	if &out2[0] != &dst[:1][0] {
		t.Fatal("ReadAtAppend re-allocated despite sufficient capacity")
	}
}

// TestConcurrentTenantPuts hammers one fleet from several tenants at
// once — with the race detector on, this pins the locking discipline
// of the shared substrate.
func TestConcurrentTenantPuts(t *testing.T) {
	fleet, _ := newTestFleet(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for _, name := range []string{"a", "b", "c", "d"} {
		s, err := fleet.Tenant(name, Quota{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(s *Store, i int) {
				defer wg.Done()
				key := []byte{'k', byte('0' + i)}
				if err := s.Put(ctx, string(key), bytes.Repeat(key, 300)); err != nil {
					errs <- err
				}
			}(s, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		s, _ := fleet.Tenant(name, Quota{})
		if got := len(s.Keys()); got != 3 {
			t.Fatalf("tenant %s holds %d keys, want 3", name, got)
		}
	}
}
