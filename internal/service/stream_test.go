package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"trapquorum/client"
	"trapquorum/internal/sim"
)

// Streaming IO must agree byte-for-byte with the buffered API on every
// stripe-boundary shape, and a failed stream must leave nothing behind:
// no directory entry, no reserved key, no orphaned chunks on any node.

// streamSizes covers the boundary shapes: empty, sub-block, exact
// block, exact stripe (8×64 = 512 here), one byte either side of the
// stripe boundary, multi-stripe with a short final stripe, and
// multi-stripe with an exactly-full final stripe.
var streamSizes = []int{0, 1, 63, 64, 511, 512, 513, 1024, 1300, 2048}

func streamPattern(n int) []byte {
	p := make([]byte, n)
	rng := rand.New(rand.NewSource(int64(n) + 7))
	rng.Read(p)
	return p
}

// stripeResidue counts chunks left anywhere in the cluster for stripe
// ids in [lo, hi) — the orphan check after a failed stream.
func stripeResidue(t *testing.T, cluster *sim.Cluster, n int, lo, hi uint64) int {
	t.Helper()
	ctx := context.Background()
	residue := 0
	for stripe := lo; stripe < hi; stripe++ {
		for shard := 0; shard < n; shard++ {
			for j := 0; j < cluster.Size(); j++ {
				ok, err := cluster.Node(j).HasChunk(ctx, client.ChunkID{Stripe: stripe, Shard: shard})
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					residue++
				}
			}
		}
	}
	return residue
}

func TestPutReaderGetWriterRoundTrip(t *testing.T) {
	store, _ := newTestStore(t)
	ctx := context.Background()
	for _, size := range streamSizes {
		key := fmt.Sprintf("obj-%d", size)
		want := streamPattern(size)
		if err := store.PutReader(ctx, key, bytes.NewReader(want), size); err != nil {
			t.Fatalf("PutReader(%d): %v", size, err)
		}
		var sink bytes.Buffer
		n, err := store.GetWriter(ctx, key, &sink)
		if err != nil {
			t.Fatalf("GetWriter(%d): %v", size, err)
		}
		if n != int64(size) || !bytes.Equal(sink.Bytes(), want) {
			t.Fatalf("GetWriter(%d) returned %d bytes, mismatch=%v", size, n, !bytes.Equal(sink.Bytes(), want))
		}
		// The buffered read path must serve the streamed object too.
		got, err := store.Get(ctx, key)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get of streamed object (%d): %v, mismatch=%v", size, err, !bytes.Equal(got, want))
		}
		if sz, _ := store.Size(key); sz != size {
			t.Fatalf("Size(%q) = %d", key, sz)
		}
	}
	// And GetWriter must serve a buffered Put.
	want := streamPattern(777)
	if err := store.Put(ctx, "buffered", want); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if _, err := store.GetWriter(ctx, "buffered", &sink); err != nil || !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("GetWriter of buffered object: %v", err)
	}
}

// TestStreamedObjectRandomAccess: ReadAt and WriteAt spanning stripe
// boundaries of a PutReader-created object behave exactly as on a
// buffered one.
func TestStreamedObjectRandomAccess(t *testing.T) {
	store, _ := newTestStore(t)
	ctx := context.Background()
	const size = 1300 // 2 full stripes (512 each) + short final stripe
	want := streamPattern(size)
	if err := store.PutReader(ctx, "obj", bytes.NewReader(want), size); err != nil {
		t.Fatal(err)
	}
	// Read across the first stripe boundary and across the last.
	for _, span := range [][2]int{{500, 30}, {1000, 60}, {0, size}, {511, 2}, {1023, 2}} {
		got, err := store.ReadAt(ctx, "obj", span[0], span[1])
		if err != nil {
			t.Fatalf("ReadAt(%v): %v", span, err)
		}
		if !bytes.Equal(got, want[span[0]:span[0]+span[1]]) {
			t.Fatalf("ReadAt(%v) diverges from source", span)
		}
	}
	// Write across a stripe boundary, then verify through both read
	// paths.
	patch := streamPattern(100)[:40]
	copy(want[495:], patch)
	if err := store.WriteAt(ctx, "obj", 495, patch); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(ctx, "obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get after boundary WriteAt: %v, mismatch=%v", err, !bytes.Equal(got, want))
	}
	var sink bytes.Buffer
	if _, err := store.GetWriter(ctx, "obj", &sink); err != nil || !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("GetWriter after boundary WriteAt: %v", err)
	}
}

func TestPutReaderExistingKey(t *testing.T) {
	store, _ := newTestStore(t)
	ctx := context.Background()
	if err := store.Put(ctx, "a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := store.PutReader(ctx, "a", bytes.NewReader([]byte{2}), 1); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
	if err := store.PutReader(ctx, "b", bytes.NewReader([]byte{2}), 1); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, "b", []byte{3}); !errors.Is(err, ErrExists) {
		t.Fatalf("Put over streamed key: err = %v", err)
	}
}

// errAfterReader yields n good bytes, then fails.
type errAfterReader struct {
	n   int
	err error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, r.err
	}
	if len(p) > r.n {
		p = p[:r.n]
	}
	for i := range p {
		p[i] = byte(i)
	}
	r.n -= len(p)
	return len(p), nil
}

// TestPutReaderMidStreamError: a reader failing after some stripes are
// already seeded unwinds everything — no directory entry, no chunk on
// any node, and the key immediately reusable.
func TestPutReaderMidStreamError(t *testing.T) {
	store, cluster := newTestStore(t)
	ctx := context.Background()
	lo := store.fleet.nextStripe

	boom := errors.New("disk on fire")
	// 2000 bytes declared, reader dies at 1100 — stripe 0 (512) and
	// stripe 1 (1024) have been seeded or are in flight, stripe 2 fails
	// mid-read.
	err := store.PutReader(ctx, "doomed", &errAfterReader{n: 1100, err: boom}, 2000)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := store.Size("doomed"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("partial object visible: %v", err)
	}
	if n := stripeResidue(t, cluster, store.fleet.cfg.N, lo, store.fleet.nextStripe); n != 0 {
		t.Fatalf("leaked %d chunks after failed stream", n)
	}
	// Short reads (declared size never delivered) unwind the same way.
	lo = store.fleet.nextStripe
	if err := store.PutReader(ctx, "doomed", bytes.NewReader(make([]byte, 600)), 2000); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read err = %v", err)
	}
	if n := stripeResidue(t, cluster, store.fleet.cfg.N, lo, store.fleet.nextStripe); n != 0 {
		t.Fatalf("leaked %d chunks after short read", n)
	}
	// The key is free for an immediate retry.
	want := streamPattern(2000)
	if err := store.PutReader(ctx, "doomed", bytes.NewReader(want), 2000); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(ctx, "doomed")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("retry after unwind: %v", err)
	}
}

// failingWriter accepts n bytes then fails.
type failingWriter struct {
	n   int
	err error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

func TestGetWriterSinkError(t *testing.T) {
	store, _ := newTestStore(t)
	ctx := context.Background()
	want := streamPattern(1300)
	if err := store.Put(ctx, "obj", want); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink full")
	n, err := store.GetWriter(ctx, "obj", &failingWriter{n: 700, err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n != 700 {
		t.Fatalf("wrote %d bytes before sink error, want 700", n)
	}
}

func TestPutReaderQuota(t *testing.T) {
	store, _ := newTestStore(t)
	tenant, err := store.Fleet().Tenant("small", Quota{MaxBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := tenant.PutReader(ctx, "big", bytes.NewReader(make([]byte, 2000)), 2000); !errors.Is(err, client.ErrQuotaExceeded) {
		t.Fatalf("quota err = %v", err)
	}
}
