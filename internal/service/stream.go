package service

import (
	"context"
	"fmt"
	"io"

	"trapquorum/client"
	"trapquorum/internal/blockpool"
	"trapquorum/internal/core"
)

// Streaming object IO: PutReader ingests an object of declared size
// from an io.Reader and GetWriter streams one back out, both touching
// only O(stripe) bytes of memory at a time. This is how multi-gigabyte
// objects move through the store without ever materialising in a
// single buffer: Put/Get hold the whole object; these hold at most two
// stripes (one being read from the source while the previous one is
// being encoded and seeded — a bounded pipeline of depth one).

// seededStripe tracks one stripe attempt for registration or cleanup.
type seededStripe struct {
	id    uint64
	sys   *core.System
	nodes []int
}

// inflightSeed is the pipeline slot: a stripe whose encode+seed runs
// while the next stripe is read from the source.
type inflightSeed struct {
	s    seededStripe
	blks []*blockpool.Block
	errc chan error
}

// PutReader stores size bytes read from r under key. The key must not
// exist (ErrExists otherwise), exactly like Put; quota is charged for
// the declared size up front. Stripes are read, encoded and seeded one
// after another with a pipeline depth of one, so peak memory is two
// stripes of pooled blocks regardless of object size. The reader must
// deliver exactly size bytes; a short read (io.ErrUnexpectedEOF), a
// reader error, or a seeding failure unwinds every stripe already
// placed — no partial object is ever visible, and the key is free for
// a retry.
func (s *Store) PutReader(ctx context.Context, key string, r io.Reader, size int) error {
	if size < 0 {
		return fmt.Errorf("%w: negative size %d", ErrBadRange, size)
	}
	f := s.fleet
	f.mu.Lock()
	if s.directory[key] != nil || s.pending[key] {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, key)
	}
	if err := s.checkQuota(size); err != nil {
		f.mu.Unlock()
		return err
	}
	// Reserve the key (and its quota footprint) so a concurrent Put of
	// the same key fails with ErrExists instead of orphaning stripes;
	// every exit path releases the reservation, success swapping it for
	// the directory entry. The epoch is pinned and counted in putsIn —
	// a migration cannot fence it while this stream is still seeding.
	s.pending[key] = true
	s.pendingObjects++
	s.pendingBytes += int64(size)
	ec := f.cur
	f.putsIn[ec.id]++
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(s.pending, key)
		s.pendingObjects--
		s.pendingBytes -= int64(size)
		f.putsIn[ec.id]--
		f.mu.Unlock()
	}()

	capacity := ec.capacity(f.cfg.BlockSize)
	stripeCount := (size + capacity - 1) / capacity
	if stripeCount == 0 {
		stripeCount = 1 // empty objects still own one stripe for WriteAt growth semantics
	}

	var (
		attempted []seededStripe // every stripe that may hold shards (cleanup set)
		seeded    []seededStripe // stripes whose seed completed (registration set)
		inflight  *inflightSeed
	)
	// waitSeed drains the pipeline slot and recycles its blocks.
	waitSeed := func() error {
		if inflight == nil {
			return nil
		}
		err := <-inflight.errc
		for _, b := range inflight.blks {
			b.Release()
		}
		if err == nil {
			seeded = append(seeded, inflight.s)
		}
		inflight = nil
		return err
	}
	// unwind deletes the shards of every attempted stripe — the one
	// that failed may be partially installed — on a detached context
	// (the caller's may be what died).
	unwind := func(err error) error {
		if werr := waitSeed(); werr != nil && err == nil {
			err = werr
		}
		dctx := context.Background()
		for _, d := range attempted {
			for shard, node := range d.nodes {
				_ = f.nodeClient(node).DeleteChunk(dctx, client.ChunkID{Stripe: d.id, Shard: shard})
			}
			d.sys.ForgetStripe(d.id)
		}
		return err
	}

	remaining := size
	for i := 0; i < stripeCount; i++ {
		// Read the stripe's payload into pooled blocks, zero-padding
		// the tail (pooled buffers come back with undefined contents).
		blks := make([]*blockpool.Block, ec.k)
		blocks := make([][]byte, ec.k)
		for b := range blocks {
			blks[b] = blockpool.GetBlock(f.cfg.BlockSize)
			blocks[b] = blks[b].B
			fill := remaining
			if fill > f.cfg.BlockSize {
				fill = f.cfg.BlockSize
			}
			if fill > 0 {
				if _, err := io.ReadFull(r, blocks[b][:fill]); err != nil {
					if err == io.EOF {
						err = io.ErrUnexpectedEOF
					}
					for _, blk := range blks {
						blk.Release()
					}
					return unwind(fmt.Errorf("reading object %q at byte %d of %d: %w",
						key, size-remaining, size, err))
				}
				remaining -= fill
			}
			for j := fill; j < f.cfg.BlockSize; j++ {
				blocks[b][j] = 0
			}
		}

		// Allocate the stripe id and placement.
		f.mu.Lock()
		id := f.nextStripe
		f.nextStripe++
		nodes, err := ec.place.Place(id, ec.n)
		if err == nil {
			var sys *core.System
			sys, err = f.systemFor(ec, nodes)
			if err == nil {
				f.mu.Unlock()
				// Overlap: wait out the previous stripe's seed only
				// after this stripe is fully read and planned.
				st := seededStripe{id: id, sys: sys, nodes: nodes}
				attempted = append(attempted, st)
				if werr := waitSeed(); werr != nil {
					for _, blk := range blks {
						blk.Release()
					}
					return unwind(werr)
				}
				inflight = &inflightSeed{s: st, blks: blks, errc: make(chan error, 1)}
				go func(fl *inflightSeed, data [][]byte) {
					fl.errc <- fl.s.sys.SeedStripe(ctx, fl.s.id, data)
				}(inflight, blocks)
				continue
			}
		}
		f.mu.Unlock()
		for _, blk := range blks {
			blk.Release()
		}
		return unwind(err)
	}
	if err := waitSeed(); err != nil {
		return unwind(err)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	stripes := make([]uint64, 0, len(seeded))
	for _, p := range seeded {
		f.stripeSys[p.id] = p.sys
		f.stripeLoc[p.id] = p.nodes
		stripes = append(stripes, p.id)
	}
	s.directory[key] = &objectMeta{size: size, stripes: stripes, ec: ec}
	s.usedBytes += int64(size)
	s.ctr.puts.Add(1)
	s.ctr.bytesIn.Add(int64(size))
	// A reconfiguration may have advanced past our pinned epoch while
	// the stream was seeding: hand the fresh object to the active
	// migration (see Put for why it cannot have completed).
	if ec != f.cur && f.mig != nil {
		f.mig.enqueueLocked(s.tenant, key)
	}
	return nil
}

// GetWriter streams the object to w through quorum reads, one block at
// a time — peak memory is one block plus the protocol's own working
// set, however large the object. It returns the bytes written; on a
// read or write error the count says how much of the object reached w.
func (s *Store) GetWriter(ctx context.Context, key string, w io.Writer) (int64, error) {
	m, err := s.meta(key)
	if err != nil {
		return 0, err
	}
	var written int64
	remaining := m.size
	for logical := 0; remaining > 0; logical++ {
		data, err := s.readLogicalBlock(ctx, &m, key, logical)
		if err != nil {
			return written, err
		}
		take := len(data)
		if take > remaining {
			take = remaining
		}
		n, werr := w.Write(data[:take])
		written += int64(n)
		remaining -= take
		if werr != nil {
			return written, fmt.Errorf("writing object %q: %w", key, werr)
		}
	}
	s.ctr.gets.Add(1)
	s.ctr.bytesOut.Add(int64(m.size))
	return written, nil
}
