package failsched

import (
	"math"
	"testing"
)

func TestModelAvailability(t *testing.T) {
	m := Model{MTBF: 9, MTTR: 1}
	if got := m.Availability(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("availability = %v", got)
	}
}

func TestModelValidate(t *testing.T) {
	for _, m := range []Model{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v accepted", m)
		}
	}
	if err := (Model{1, 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	m := Model{MTBF: 5, MTTR: 1}
	if _, err := Generate(0, 10, m, 1); err == nil {
		t.Error("nodes=0 accepted")
	}
	if _, err := Generate(3, 0, m, 1); err == nil {
		t.Error("horizon=0 accepted")
	}
	if _, err := Generate(3, 10, Model{}, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestGenerateEventOrderAndAlternation(t *testing.T) {
	s, err := Generate(5, 1000, Model{MTBF: 10, MTTR: 2}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) == 0 {
		t.Fatal("no events over a long horizon")
	}
	prev := -1.0
	lastKind := make(map[int]EventKind)
	for _, ev := range s.Events {
		if ev.Time < prev {
			t.Fatal("events out of order")
		}
		prev = ev.Time
		if ev.Time < 0 || ev.Time >= 1000 {
			t.Fatalf("event time %v outside horizon", ev.Time)
		}
		if last, seen := lastKind[ev.Node]; seen && last == ev.Kind {
			t.Fatalf("node %d has consecutive %v events", ev.Node, ev.Kind)
		}
		lastKind[ev.Node] = ev.Kind
	}
	// Every node's first event must be a crash (all start up).
	seen := map[int]bool{}
	for _, ev := range s.Events {
		if !seen[ev.Node] {
			if ev.Kind != Crash {
				t.Fatalf("node %d first event is %v", ev.Node, ev.Kind)
			}
			seen[ev.Node] = true
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(4, 100, Model{MTBF: 5, MTTR: 1}, 7)
	b, _ := Generate(4, 100, Model{MTBF: 5, MTTR: 1}, 7)
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different schedules")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same seed, different events")
		}
	}
}

func TestCursorWalk(t *testing.T) {
	s := &Schedule{
		Nodes:   2,
		Horizon: 10,
		Events: []Event{
			{Time: 1, Node: 0, Kind: Crash},
			{Time: 2, Node: 1, Kind: Crash},
			{Time: 3, Node: 0, Kind: Restart},
		},
	}
	cur := NewCursor(s)
	up, err := cur.AdvanceTo(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !up[0] || !up[1] || cur.UpCount() != 2 {
		t.Fatal("initial state wrong")
	}
	up, _ = cur.AdvanceTo(1.5)
	if up[0] || !up[1] {
		t.Fatal("state after first crash wrong")
	}
	up, _ = cur.AdvanceTo(3.5)
	if !up[0] || up[1] || cur.UpCount() != 1 {
		t.Fatal("state after restart wrong")
	}
	if _, err := cur.AdvanceTo(1.0); err == nil {
		t.Fatal("time going backwards accepted")
	}
	if cur.Now() != 3.5 {
		t.Fatalf("Now = %v", cur.Now())
	}
}

// TestEmpiricalMatchesModel checks that over a long horizon the
// generated schedule's up-fraction converges to MTBF/(MTBF+MTTR).
func TestEmpiricalMatchesModel(t *testing.T) {
	m := Model{MTBF: 8, MTTR: 2} // p = 0.8
	s, err := Generate(20, 50000, m, 11)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := MeanUpFraction(s, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.8) > 0.02 {
		t.Fatalf("empirical availability %v, model 0.8", mean)
	}
}

func TestEmpiricalAvailabilityValidation(t *testing.T) {
	s, _ := Generate(2, 10, Model{MTBF: 1, MTTR: 1}, 1)
	if _, err := EmpiricalAvailability(s, 5, 100); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := EmpiricalAvailability(s, 0, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestEventKindString(t *testing.T) {
	if Crash.String() != "crash" || Restart.String() != "restart" {
		t.Fatal("kind strings wrong")
	}
}
