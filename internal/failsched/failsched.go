// Package failsched generates fail-stop schedules from an
// MTBF/MTTR availability model: each node alternates exponentially
// distributed up and down periods, giving steady-state availability
// p = MTBF / (MTBF + MTTR). The schedules drive long-horizon
// endurance experiments where the paper's instantaneous iid model is
// replaced by correlated-in-time failures and finite repair delay.
//
// Time is virtual (abstract ticks); the simulator consumes events in
// order rather than sleeping.
package failsched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// EventKind says whether a node goes down or comes back.
type EventKind int

// Event kinds.
const (
	Crash EventKind = iota
	Restart
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k == Crash {
		return "crash"
	}
	return "restart"
}

// Event is one state transition of one node at a virtual time.
type Event struct {
	Time float64
	Node int
	Kind EventKind
}

// Model is the per-node alternating renewal model.
type Model struct {
	// MTBF is the mean up period (exponential).
	MTBF float64
	// MTTR is the mean down period (exponential).
	MTTR float64
}

// Availability returns the steady-state node availability
// MTBF / (MTBF + MTTR).
func (m Model) Availability() float64 {
	return m.MTBF / (m.MTBF + m.MTTR)
}

// Validate checks both means are positive.
func (m Model) Validate() error {
	if !(m.MTBF > 0) || !(m.MTTR > 0) {
		return fmt.Errorf("failsched: MTBF and MTTR must be positive, got %v/%v", m.MTBF, m.MTTR)
	}
	return nil
}

// Schedule is a time-ordered list of events for a cluster.
type Schedule struct {
	Events  []Event
	Horizon float64
	Nodes   int
}

// Generate builds a schedule for `nodes` nodes over [0, horizon).
// All nodes start up; each alternates exp(MTBF) up and exp(MTTR) down
// periods. Events are sorted by time (ties by node).
func Generate(nodes int, horizon float64, m Model, seed int64) (*Schedule, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("failsched: need nodes >= 1, got %d", nodes)
	}
	if !(horizon > 0) {
		return nil, fmt.Errorf("failsched: horizon must be positive, got %v", horizon)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	var events []Event
	for node := 0; node < nodes; node++ {
		t := 0.0
		up := true
		for {
			var dwell float64
			if up {
				dwell = r.ExpFloat64() * m.MTBF
			} else {
				dwell = r.ExpFloat64() * m.MTTR
			}
			t += dwell
			if t >= horizon {
				break
			}
			kind := Crash
			if !up {
				kind = Restart
			}
			events = append(events, Event{Time: t, Node: node, Kind: kind})
			up = !up
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Node < events[j].Node
	})
	return &Schedule{Events: events, Horizon: horizon, Nodes: nodes}, nil
}

// Cursor walks a schedule, maintaining the up/down state of every
// node as virtual time advances.
type Cursor struct {
	sched *Schedule
	next  int
	up    []bool
	now   float64
}

// NewCursor starts a walk at time 0 with all nodes up.
func NewCursor(s *Schedule) *Cursor {
	up := make([]bool, s.Nodes)
	for i := range up {
		up[i] = true
	}
	return &Cursor{sched: s, up: up}
}

// AdvanceTo applies all events with Time <= t and returns the node
// states after them. The returned slice is the cursor's internal
// state; copy before mutating. Time must not go backwards.
func (c *Cursor) AdvanceTo(t float64) ([]bool, error) {
	if t < c.now {
		return nil, fmt.Errorf("failsched: time went backwards (%v -> %v)", c.now, t)
	}
	c.now = t
	for c.next < len(c.sched.Events) && c.sched.Events[c.next].Time <= t {
		ev := c.sched.Events[c.next]
		c.up[ev.Node] = ev.Kind == Restart
		c.next++
	}
	return c.up, nil
}

// Now returns the cursor's current virtual time.
func (c *Cursor) Now() float64 { return c.now }

// UpCount returns how many nodes are currently up.
func (c *Cursor) UpCount() int {
	n := 0
	for _, u := range c.up {
		if u {
			n++
		}
	}
	return n
}

// EmpiricalAvailability integrates the fraction of up-time over the
// whole horizon for one node, as a sanity check against
// Model.Availability. It walks a fresh cursor in fixed steps.
func EmpiricalAvailability(s *Schedule, node int, steps int) (float64, error) {
	if node < 0 || node >= s.Nodes {
		return 0, fmt.Errorf("failsched: node %d out of [0,%d)", node, s.Nodes)
	}
	if steps < 1 {
		return 0, fmt.Errorf("failsched: need steps >= 1")
	}
	cur := NewCursor(s)
	upTime := 0.0
	dt := s.Horizon / float64(steps)
	for i := 0; i < steps; i++ {
		up, err := cur.AdvanceTo(float64(i) * dt)
		if err != nil {
			return 0, err
		}
		if up[node] {
			upTime += dt
		}
	}
	return upTime / s.Horizon, nil
}

// MeanUpFraction averages empirical availability across all nodes.
func MeanUpFraction(s *Schedule, steps int) (float64, error) {
	total := 0.0
	for node := 0; node < s.Nodes; node++ {
		a, err := EmpiricalAvailability(s, node, steps)
		if err != nil {
			return 0, err
		}
		total += a
	}
	if math.IsNaN(total) {
		return 0, fmt.Errorf("failsched: NaN availability")
	}
	return total / float64(s.Nodes), nil
}
