package quorum

import (
	"math"
	"math/rand"
	"testing"

	"trapquorum/internal/trapezoid"
)

// systemsUnderTest returns one small instance of every System, sized
// for exhaustive 2^n enumeration.
func systemsUnderTest(t *testing.T) []System {
	t.Helper()
	rowa, err := NewROWA(5)
	if err != nil {
		t.Fatal(err)
	}
	maj, err := NewMajority(9)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewGrid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewTree(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := trapezoid.NewConfig(trapezoid.Shape{A: 2, B: 3, H: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	trap, err := NewTrapezoidFR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []System{rowa, maj, grid, tree, trap}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewROWA(0); err == nil {
		t.Error("ROWA(0) accepted")
	}
	if _, err := NewMajority(-1); err == nil {
		t.Error("Majority(-1) accepted")
	}
	if _, err := NewGrid(0, 3); err == nil {
		t.Error("Grid(0,3) accepted")
	}
	if _, err := NewGrid(3, 0); err == nil {
		t.Error("Grid(3,0) accepted")
	}
	if _, err := NewTree(-1, 2); err == nil {
		t.Error("Tree(-1,2) accepted")
	}
	if _, err := NewTree(2, 1); err == nil {
		t.Error("Tree(2,1) accepted")
	}
	badCfg := trapezoid.Config{Shape: trapezoid.Shape{A: -1, B: 1, H: 0}, W: []int{1}}
	if _, err := NewTrapezoidFR(badCfg); err == nil {
		t.Error("bad trapezoid accepted")
	}
}

func TestSizes(t *testing.T) {
	want := map[string]int{
		"ROWA(n=5)":              5,
		"Majority(n=9)":          9,
		"Grid(3x4)":              12,
		"Tree(h=2,d=2)":          7,
		"Trapezoid(a=2 b=3 h=1)": 8,
	}
	for _, s := range systemsUnderTest(t) {
		if got := s.Size(); got != want[s.Name()] {
			t.Errorf("%s: Size = %d, want %d", s.Name(), got, want[s.Name()])
		}
	}
}

// TestAnalyticMatchesExact cross-checks every closed-form availability
// against exhaustive enumeration of the constructive quorum functions.
func TestAnalyticMatchesExact(t *testing.T) {
	for _, s := range systemsUnderTest(t) {
		for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			gotW := s.WriteAvailability(p)
			wantW := ExactWriteAvailability(s, p)
			if math.Abs(gotW-wantW) > 1e-9 {
				t.Errorf("%s p=%v: write analytic %v != exact %v", s.Name(), p, gotW, wantW)
			}
			gotR := s.ReadAvailability(p)
			wantR := ExactReadAvailability(s, p)
			if math.Abs(gotR-wantR) > 1e-9 {
				t.Errorf("%s p=%v: read analytic %v != exact %v", s.Name(), p, gotR, wantR)
			}
		}
	}
}

// TestQuorumIntersectionRandomised drives each system with random
// availability masks and checks the two safety conditions: RQ ∩ WQ ≠ ∅
// (equation 2) and WQ1 ∩ WQ2 ≠ ∅ (equation 3).
func TestQuorumIntersectionRandomised(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, s := range systemsUnderTest(t) {
		n := s.Size()
		for trial := 0; trial < 3000; trial++ {
			mask1 := make([]bool, n)
			mask2 := make([]bool, n)
			for i := range mask1 {
				mask1[i] = r.Float64() < 0.75
				mask2[i] = r.Float64() < 0.75
			}
			w1, ok1 := s.WriteQuorum(func(i int) bool { return mask1[i] })
			w2, ok2 := s.WriteQuorum(func(i int) bool { return mask2[i] })
			if ok1 && ok2 && !Intersects(w1, w2) {
				t.Fatalf("%s: write quorums %v / %v disjoint", s.Name(), w1, w2)
			}
			rq, okR := s.ReadQuorum(func(i int) bool { return mask2[i] })
			if ok1 && okR && !Intersects(rq, w1) {
				t.Fatalf("%s: read quorum %v misses write quorum %v", s.Name(), rq, w1)
			}
		}
	}
}

// TestQuorumMembersAreAvailable ensures the constructive side never
// returns a node the availability mask rejected.
func TestQuorumMembersAreAvailable(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, s := range systemsUnderTest(t) {
		n := s.Size()
		for trial := 0; trial < 500; trial++ {
			mask := make([]bool, n)
			for i := range mask {
				mask[i] = r.Float64() < 0.8
			}
			av := func(i int) bool { return mask[i] }
			if q, ok := s.WriteQuorum(av); ok {
				for _, node := range q {
					if !mask[node] {
						t.Fatalf("%s: write quorum contains down node %d", s.Name(), node)
					}
				}
			}
			if q, ok := s.ReadQuorum(av); ok {
				for _, node := range q {
					if !mask[node] {
						t.Fatalf("%s: read quorum contains down node %d", s.Name(), node)
					}
				}
			}
		}
	}
}

func allNodesUp(int) bool { return true }

func TestROWASemantics(t *testing.T) {
	rowa, _ := NewROWA(4)
	q, ok := rowa.WriteQuorum(allNodesUp)
	if !ok || len(q) != 4 {
		t.Fatalf("write quorum = %v, %v", q, ok)
	}
	if _, ok := rowa.WriteQuorum(func(i int) bool { return i != 2 }); ok {
		t.Fatal("ROWA wrote with a node down")
	}
	q, ok = rowa.ReadQuorum(func(i int) bool { return i == 3 })
	if !ok || len(q) != 1 || q[0] != 3 {
		t.Fatalf("read quorum = %v, %v", q, ok)
	}
}

func TestMajoritySemantics(t *testing.T) {
	maj, _ := NewMajority(5)
	if maj.Threshold() != 3 {
		t.Fatalf("threshold = %d", maj.Threshold())
	}
	if _, ok := maj.WriteQuorum(func(i int) bool { return i < 2 }); ok {
		t.Fatal("2 of 5 formed a majority")
	}
	q, ok := maj.WriteQuorum(func(i int) bool { return i < 3 })
	if !ok || len(q) != 3 {
		t.Fatalf("quorum = %v, %v", q, ok)
	}
}

func TestGridSemantics(t *testing.T) {
	g, _ := NewGrid(2, 3)
	// Down the whole first column: reads fail, writes fail.
	colDown := func(i int) bool { return i%3 != 0 }
	if _, ok := g.ReadQuorum(colDown); ok {
		t.Fatal("read succeeded with an empty column")
	}
	if _, ok := g.WriteQuorum(colDown); ok {
		t.Fatal("write succeeded with an empty column")
	}
	// One node down: writes should still find a full column.
	oneDown := func(i int) bool { return i != 4 }
	q, ok := g.WriteQuorum(oneDown)
	if !ok {
		t.Fatal("write failed with a single node down")
	}
	if len(q) != 2+2 { // full column (2 rows) + cover of other 2 columns
		t.Fatalf("|WQ| = %d, want 4", len(q))
	}
}

func TestTreeSemantics(t *testing.T) {
	tr, _ := NewTree(2, 2) // 7 nodes, root 0, children 1,2, leaves 3..6
	// All up: quorum is a root-to-leaf path of 3 nodes.
	q, ok := tr.WriteQuorum(allNodesUp)
	if !ok || len(q) != 3 {
		t.Fatalf("quorum = %v, %v, want a 3-node path", q, ok)
	}
	// Root down: need quorums in both subtrees.
	rootDown := func(i int) bool { return i != 0 }
	q, ok = tr.WriteQuorum(rootDown)
	if !ok {
		t.Fatal("no quorum with root down")
	}
	if len(q) != 4 { // two 2-node paths
		t.Fatalf("|WQ| = %d, want 4", len(q))
	}
	// Root down and left subtree root down: left needs both leaves.
	twoDown := func(i int) bool { return i != 0 && i != 1 }
	if q, ok = tr.WriteQuorum(twoDown); !ok {
		t.Fatalf("no quorum with root and one internal down")
	} else if len(q) != 4 {
		t.Fatalf("|WQ| = %d, want 4 (both left leaves + right 2-node path)", len(q))
	}
	// Everything except leaves down: quorum is all leaves.
	leavesOnly := func(i int) bool { return i >= 3 }
	if q, ok = tr.WriteQuorum(leavesOnly); !ok || len(q) != 4 {
		t.Fatalf("leaves-only quorum = %v, %v", q, ok)
	}
}

func TestTreeSizeFormula(t *testing.T) {
	cases := []struct{ h, d, want int }{
		{0, 2, 1}, {1, 2, 3}, {2, 2, 7}, {3, 2, 15}, {1, 3, 4}, {2, 3, 13},
	}
	for _, c := range cases {
		tr, err := NewTree(c.h, c.d)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Size() != c.want {
			t.Errorf("Tree(h=%d,d=%d).Size = %d, want %d", c.h, c.d, tr.Size(), c.want)
		}
	}
}

// TestROWATradeoffShape documents the textbook tradeoff the paper
// recalls: ROWA has the best reads and the worst writes.
func TestROWATradeoffShape(t *testing.T) {
	rowa, _ := NewROWA(9)
	maj, _ := NewMajority(9)
	for _, p := range []float64{0.5, 0.7, 0.9} {
		if rowa.ReadAvailability(p) < maj.ReadAvailability(p) {
			t.Errorf("p=%v: ROWA reads below majority", p)
		}
		if rowa.WriteAvailability(p) > maj.WriteAvailability(p) {
			t.Errorf("p=%v: ROWA writes above majority", p)
		}
	}
}

func TestIntersectsHelper(t *testing.T) {
	if Intersects([]int{1, 2}, []int{3, 4}) {
		t.Fatal("disjoint sets reported intersecting")
	}
	if !Intersects([]int{1, 2}, []int{2, 9}) {
		t.Fatal("overlap missed")
	}
	if Intersects(nil, []int{1}) {
		t.Fatal("nil set intersects")
	}
}

func TestExactEnumerationGuard(t *testing.T) {
	big, _ := NewMajority(25)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized enumeration")
		}
	}()
	ExactWriteAvailability(big, 0.5)
}

func BenchmarkTreeQuorum(b *testing.B) {
	tr, _ := NewTree(3, 2)
	avail := func(i int) bool { return i%7 != 0 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.WriteQuorum(avail)
	}
}

func BenchmarkGridQuorum(b *testing.B) {
	g, _ := NewGrid(4, 4)
	avail := func(i int) bool { return i%5 != 0 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WriteQuorum(avail)
	}
}
