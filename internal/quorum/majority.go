package quorum

import (
	"fmt"

	"trapquorum/internal/availability"
)

// Majority is Thomas's majority consensus: both reads and writes
// require a strict majority ⌊n/2⌋+1 of the replicas, which guarantees
// read/write and write/write intersection.
type Majority struct {
	n int
}

// NewMajority builds a majority quorum system over n ≥ 1 replicas.
func NewMajority(n int) (*Majority, error) {
	if n < 1 {
		return nil, fmt.Errorf("quorum: Majority needs n >= 1, got %d", n)
	}
	return &Majority{n: n}, nil
}

// Name implements System.
func (m *Majority) Name() string { return fmt.Sprintf("Majority(n=%d)", m.n) }

// Size implements System.
func (m *Majority) Size() int { return m.n }

// Threshold returns ⌊n/2⌋+1.
func (m *Majority) Threshold() int { return m.n/2 + 1 }

func (m *Majority) pick(available func(int) bool) ([]int, bool) {
	need := m.Threshold()
	q := make([]int, 0, need)
	for i := 0; i < m.n && len(q) < need; i++ {
		if available(i) {
			q = append(q, i)
		}
	}
	if len(q) < need {
		return nil, false
	}
	return q, true
}

// WriteQuorum implements System.
func (m *Majority) WriteQuorum(available func(int) bool) ([]int, bool) {
	return m.pick(available)
}

// ReadQuorum implements System.
func (m *Majority) ReadQuorum(available func(int) bool) ([]int, bool) {
	return m.pick(available)
}

// WriteAvailability implements System: Φ_n(⌊n/2⌋+1, n).
func (m *Majority) WriteAvailability(p float64) float64 {
	return availability.Phi(m.n, m.Threshold(), m.n, p)
}

// ReadAvailability implements System; identical to writes.
func (m *Majority) ReadAvailability(p float64) float64 {
	return m.WriteAvailability(p)
}
