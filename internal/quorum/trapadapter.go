package quorum

import (
	"fmt"

	"trapquorum/internal/availability"
	"trapquorum/internal/trapezoid"
)

// TrapezoidFR adapts the trapezoid protocol (full-replication variant)
// to the System interface so the ablation benches can compare it
// head-to-head with the classical systems on identical node counts.
type TrapezoidFR struct {
	lay *trapezoid.Layout
}

// NewTrapezoidFR wraps a trapezoid configuration as a System.
func NewTrapezoidFR(cfg trapezoid.Config) (*TrapezoidFR, error) {
	lay, err := trapezoid.NewLayout(cfg)
	if err != nil {
		return nil, err
	}
	return &TrapezoidFR{lay: lay}, nil
}

// Name implements System.
func (t *TrapezoidFR) Name() string {
	return fmt.Sprintf("Trapezoid(%s)", t.lay.Config().Shape)
}

// Size implements System.
func (t *TrapezoidFR) Size() int { return t.lay.NbNodes() }

// WriteQuorum implements System.
func (t *TrapezoidFR) WriteQuorum(available func(int) bool) ([]int, bool) {
	return t.lay.WriteQuorum(available)
}

// ReadQuorum implements System.
func (t *TrapezoidFR) ReadQuorum(available func(int) bool) ([]int, bool) {
	_, q, ok := t.lay.ReadQuorum(available)
	return q, ok
}

// WriteAvailability implements System via equation (8).
func (t *TrapezoidFR) WriteAvailability(p float64) float64 {
	return availability.Write(t.lay.Config(), p)
}

// ReadAvailability implements System via equation (10).
func (t *TrapezoidFR) ReadAvailability(p float64) float64 {
	return availability.ReadFR(t.lay.Config(), p)
}
