// Package quorum implements the classical quorum systems the paper's
// related-work section positions the trapezoid protocol against:
// ROWA (read one / write all), Majority [Thomas 1979], the Grid
// protocol [Cheung, Ammar, Ahamad 1990] and the Tree quorum protocol
// [Agrawal, El Abbadi 1991]. They serve as baselines in the ablation
// benches: same node count, different quorum geometry.
//
// Every system exposes both the constructive side (assemble a quorum
// from currently available nodes) and the analytic side (closed-form
// read/write availability at node availability p). The test suite
// cross-checks the two by exhaustive state enumeration.
package quorum

import "fmt"

// System is a quorum system over nodes labelled 0..Size()-1.
type System interface {
	// Name identifies the system in tables and benches.
	Name() string
	// Size returns the number of nodes the system manages.
	Size() int
	// WriteQuorum assembles a write quorum from available nodes,
	// returning ok=false when none exists.
	WriteQuorum(available func(node int) bool) (quorum []int, ok bool)
	// ReadQuorum assembles a read quorum from available nodes.
	ReadQuorum(available func(node int) bool) (quorum []int, ok bool)
	// WriteAvailability returns the probability a write quorum exists
	// when each node is independently available with probability p.
	WriteAvailability(p float64) float64
	// ReadAvailability returns the probability a read quorum exists.
	ReadAvailability(p float64) float64
}

// ExactWriteAvailability computes write availability by enumerating
// all 2^Size() node states and asking the constructive side. Intended
// for tests and small systems (Size ≤ 20).
func ExactWriteAvailability(s System, p float64) float64 {
	return exactAvailability(s.Size(), p, func(av func(int) bool) bool {
		_, ok := s.WriteQuorum(av)
		return ok
	})
}

// ExactReadAvailability is the read-side analogue of
// ExactWriteAvailability.
func ExactReadAvailability(s System, p float64) float64 {
	return exactAvailability(s.Size(), p, func(av func(int) bool) bool {
		_, ok := s.ReadQuorum(av)
		return ok
	})
}

func exactAvailability(n int, p float64, ok func(func(int) bool) bool) float64 {
	if n > 24 {
		panic(fmt.Sprintf("quorum: exact enumeration over %d nodes is too large", n))
	}
	total := 0.0
	for state := 0; state < 1<<uint(n); state++ {
		prob := 1.0
		for i := 0; i < n; i++ {
			if state&(1<<uint(i)) != 0 {
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		if prob == 0 {
			continue
		}
		if ok(func(i int) bool { return state&(1<<uint(i)) != 0 }) {
			total += prob
		}
	}
	return total
}

// Intersects reports whether two node sets share an element.
func Intersects(a, b []int) bool {
	set := make(map[int]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	for _, y := range b {
		if _, hit := set[y]; hit {
			return true
		}
	}
	return false
}
