package quorum

import (
	"fmt"
	"math"
)

// Tree is the tree quorum protocol of Agrawal and El Abbadi over a
// complete d-ary tree of the given height (height 0 is a single
// node). A quorum is assembled recursively: if a subtree's root is
// available, the root plus a quorum of any one child subtree; if the
// root has failed, quorums of all d child subtrees. Any two such
// quorums intersect (induction over height), which gives the protocol
// its mutual-exclusion safety; reads and writes use the same quorums.
//
// Nodes are numbered in breadth-first order from the root (node 0).
type Tree struct {
	height, degree int
	size           int
}

// NewTree builds a complete degree-ary tree of the given height.
// degree ≥ 2 and height ≥ 0; size is (d^(h+1)−1)/(d−1).
func NewTree(height, degree int) (*Tree, error) {
	if height < 0 || degree < 2 {
		return nil, fmt.Errorf("quorum: tree needs height >= 0 and degree >= 2, got h=%d d=%d", height, degree)
	}
	size := 0
	pow := 1
	for l := 0; l <= height; l++ {
		size += pow
		pow *= degree
	}
	if size > 1<<20 {
		return nil, fmt.Errorf("quorum: tree with %d nodes is unreasonably large", size)
	}
	return &Tree{height: height, degree: degree, size: size}, nil
}

// Name implements System.
func (t *Tree) Name() string { return fmt.Sprintf("Tree(h=%d,d=%d)", t.height, t.degree) }

// Size implements System.
func (t *Tree) Size() int { return t.size }

// child returns the c-th child of node v in breadth-first numbering.
func (t *Tree) child(v, c int) int { return v*t.degree + 1 + c }

// isLeaf reports whether v has no children in this tree.
func (t *Tree) isLeaf(v int) bool { return t.child(v, 0) >= t.size }

// quorum recursively assembles a tree quorum for the subtree rooted at
// v, appending to acc. It returns the extended slice and whether a
// quorum exists.
func (t *Tree) quorum(v int, available func(int) bool, acc []int) ([]int, bool) {
	if t.isLeaf(v) {
		if available(v) {
			return append(acc, v), true
		}
		return acc, false
	}
	if available(v) {
		// Root up: root plus a quorum from any single child subtree.
		for c := 0; c < t.degree; c++ {
			if ext, ok := t.quorum(t.child(v, c), available, append(acc, v)); ok {
				return ext, true
			}
		}
		return acc, false
	}
	// Root down: quorums from all child subtrees.
	ext := acc
	for c := 0; c < t.degree; c++ {
		var ok bool
		ext, ok = t.quorum(t.child(v, c), available, ext)
		if !ok {
			return acc, false
		}
	}
	return ext, true
}

// WriteQuorum implements System.
func (t *Tree) WriteQuorum(available func(int) bool) ([]int, bool) {
	q, ok := t.quorum(0, available, nil)
	if !ok {
		return nil, false
	}
	return q, true
}

// ReadQuorum implements System; identical to writes in this protocol.
func (t *Tree) ReadQuorum(available func(int) bool) ([]int, bool) {
	return t.WriteQuorum(available)
}

// availabilityAtHeight returns the probability a quorum exists for a
// subtree of the given height: A(0) = p and
// A(h) = p·(1 − (1−A(h−1))^d) + (1−p)·A(h−1)^d.
func (t *Tree) availabilityAtHeight(h int, p float64) float64 {
	a := p
	for level := 1; level <= h; level++ {
		anyChild := 1 - math.Pow(1-a, float64(t.degree))
		allChildren := math.Pow(a, float64(t.degree))
		a = p*anyChild + (1-p)*allChildren
	}
	return a
}

// WriteAvailability implements System.
func (t *Tree) WriteAvailability(p float64) float64 {
	return t.availabilityAtHeight(t.height, p)
}

// ReadAvailability implements System.
func (t *Tree) ReadAvailability(p float64) float64 {
	return t.WriteAvailability(p)
}
