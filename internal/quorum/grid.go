package quorum

import (
	"fmt"
	"math"
)

// Grid is the grid protocol of Cheung, Ammar and Ahamad: nodes are
// arranged in a logical rows×cols grid. A read quorum takes one node
// from every column (a column cover); a write quorum takes one full
// column plus one node from every other column. Node i sits at row
// i/cols, column i%cols.
type Grid struct {
	rows, cols int
}

// NewGrid builds a rows×cols grid system (both ≥ 1).
func NewGrid(rows, cols int) (*Grid, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("quorum: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	return &Grid{rows: rows, cols: cols}, nil
}

// Name implements System.
func (g *Grid) Name() string { return fmt.Sprintf("Grid(%dx%d)", g.rows, g.cols) }

// Size implements System.
func (g *Grid) Size() int { return g.rows * g.cols }

// node returns the identifier at (row, col).
func (g *Grid) node(row, col int) int { return row*g.cols + col }

// columnCover picks one available node from every column, or fails.
func (g *Grid) columnCover(available func(int) bool, skip int) ([]int, bool) {
	cover := make([]int, 0, g.cols)
	for c := 0; c < g.cols; c++ {
		if c == skip {
			continue
		}
		found := -1
		for r := 0; r < g.rows; r++ {
			if available(g.node(r, c)) {
				found = g.node(r, c)
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		cover = append(cover, found)
	}
	return cover, true
}

// ReadQuorum implements System: one available node per column.
func (g *Grid) ReadQuorum(available func(int) bool) ([]int, bool) {
	return g.columnCover(available, -1)
}

// WriteQuorum implements System: a fully available column plus a cover
// of the remaining columns.
func (g *Grid) WriteQuorum(available func(int) bool) ([]int, bool) {
	for c := 0; c < g.cols; c++ {
		full := true
		for r := 0; r < g.rows; r++ {
			if !available(g.node(r, c)) {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		cover, ok := g.columnCover(available, c)
		if !ok {
			return nil, false // some other column is entirely down
		}
		q := make([]int, 0, g.rows+len(cover))
		for r := 0; r < g.rows; r++ {
			q = append(q, g.node(r, c))
		}
		return append(q, cover...), true
	}
	return nil, false
}

// ReadAvailability implements System: every column must have at least
// one node up, (1 − (1−p)^rows)^cols.
func (g *Grid) ReadAvailability(p float64) float64 {
	qAny := 1 - math.Pow(1-p, float64(g.rows))
	return math.Pow(qAny, float64(g.cols))
}

// WriteAvailability implements System. With columns independent,
// P(all columns have ≥1 up AND some column fully up)
// = qAny^cols − (qAny − qFull)^cols.
func (g *Grid) WriteAvailability(p float64) float64 {
	qAny := 1 - math.Pow(1-p, float64(g.rows))
	qFull := math.Pow(p, float64(g.rows))
	return math.Pow(qAny, float64(g.cols)) - math.Pow(qAny-qFull, float64(g.cols))
}
