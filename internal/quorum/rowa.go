package quorum

import (
	"fmt"
	"math"
)

// ROWA is the Read-One-Write-All protocol: a write must reach every
// replica, after which any single replica serves reads. It maximises
// read availability at the cost of the most fragile writes — the
// baseline the paper's introduction criticises.
type ROWA struct {
	n int
}

// NewROWA builds a ROWA system over n ≥ 1 replicas.
func NewROWA(n int) (*ROWA, error) {
	if n < 1 {
		return nil, fmt.Errorf("quorum: ROWA needs n >= 1, got %d", n)
	}
	return &ROWA{n: n}, nil
}

// Name implements System.
func (r *ROWA) Name() string { return fmt.Sprintf("ROWA(n=%d)", r.n) }

// Size implements System.
func (r *ROWA) Size() int { return r.n }

// WriteQuorum implements System: every node must be available.
func (r *ROWA) WriteQuorum(available func(int) bool) ([]int, bool) {
	q := make([]int, 0, r.n)
	for i := 0; i < r.n; i++ {
		if !available(i) {
			return nil, false
		}
		q = append(q, i)
	}
	return q, true
}

// ReadQuorum implements System: any single node suffices.
func (r *ROWA) ReadQuorum(available func(int) bool) ([]int, bool) {
	for i := 0; i < r.n; i++ {
		if available(i) {
			return []int{i}, true
		}
	}
	return nil, false
}

// WriteAvailability implements System: p^n.
func (r *ROWA) WriteAvailability(p float64) float64 {
	return math.Pow(p, float64(r.n))
}

// ReadAvailability implements System: 1 − (1−p)^n.
func (r *ROWA) ReadAvailability(p float64) float64 {
	return 1 - math.Pow(1-p, float64(r.n))
}
