package erasure

import (
	"bytes"
	"math/rand"
	"testing"

	"trapquorum/internal/blockpool"
	"trapquorum/internal/gf256"
)

// refEncode is the fully scalar reference encoder: row-wise
// generator-matrix products through the byte-at-a-time reference
// kernels, no lane tables, no segmentation, no word packing. The
// banked/parallel encoder must match it byte for byte.
func refEncode(t testing.TB, c *Code, data [][]byte) [][]byte {
	t.Helper()
	size := len(data[0])
	shards := make([][]byte, c.N())
	copy(shards, data)
	for j := c.K(); j < c.N(); j++ {
		row := c.GeneratorRow(j)
		out := make([]byte, size)
		for i, coeff := range row {
			gf256.MulAddSliceRef(coeff, out, data[i])
		}
		shards[j] = out
	}
	return shards
}

// TestEncodeMatchesScalarReference pins the banked lane-table encoder
// against the scalar reference across code shapes and block sizes that
// straddle every boundary: the word cutovers, the lane expansion
// cutover, and the segment size.
func TestEncodeMatchesScalarReference(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	shapes := [][2]int{{9, 6}, {15, 8}, {4, 1}, {5, 5}, {20, 4}, {26, 10}}
	sizes := []int{1, 7, 31, 257, 1023, 1024, 4095, 4096, 4097, 9000}
	for _, shape := range shapes {
		c := mustCode(t, shape[0], shape[1])
		for _, size := range sizes {
			data := randStripeData(r, c.K(), size)
			want := refEncode(t, c, data)
			got, err := c.Encode(data)
			if err != nil {
				t.Fatalf("(%d,%d) size %d: %v", shape[0], shape[1], size, err)
			}
			for j := range want {
				if !bytes.Equal(got[j], want[j]) {
					t.Fatalf("(%d,%d) size %d: shard %d diverges from scalar reference", shape[0], shape[1], size, j)
				}
			}
		}
	}
}

// TestEncodeManyParityBanks exercises codes with more than 8 parity
// rows, where the encoder needs multiple lane banks.
func TestEncodeManyParityBanks(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for _, shape := range [][2]int{{12, 3}, {20, 3}, {30, 10}, {40, 6}} {
		c := mustCode(t, shape[0], shape[1])
		data := randStripeData(r, c.K(), 513)
		want := refEncode(t, c, data)
		got, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				t.Fatalf("(%d,%d): shard %d diverges (bank %d)", shape[0], shape[1], j, (j-c.K())/gf256.MaxLanes)
			}
		}
		if ok, err := c.Verify(got); err != nil || !ok {
			t.Fatalf("(%d,%d): Verify = %v, %v", shape[0], shape[1], ok, err)
		}
	}
}

// TestParallelEncodeMatchesSerial is the stripe-parallel differential:
// the segment fan-out must produce byte-identical stripes for every
// worker count, including blocks whose tails straddle segment
// boundaries.
func TestParallelEncodeMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	serial := mustCode(t, 15, 8)
	for _, size := range []int{segmentSize - 1, segmentSize, segmentSize + 1, 3*segmentSize + 17, 8 * segmentSize} {
		data := randStripeData(r, 8, size)
		want, err := serial.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := New(15, 8, WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if !bytes.Equal(got[j], want[j]) {
					t.Fatalf("size %d workers %d: shard %d differs from serial", size, workers, j)
				}
			}
			// Reconstruct through the parallel code too.
			shards := cloneShards(got)
			shards[0], shards[9] = nil, nil
			if err := par.Reconstruct(shards); err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if !bytes.Equal(shards[j], want[j]) {
					t.Fatalf("size %d workers %d: reconstructed shard %d differs", size, workers, j)
				}
			}
		}
	}
}

func TestWithParallelismValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithParallelism(-1) did not panic")
		}
	}()
	WithParallelism(-1)
}

func TestWithParallelismAuto(t *testing.T) {
	c, err := New(9, 6, WithParallelism(0))
	if err != nil {
		t.Fatal(err)
	}
	if c.Parallelism() < 1 {
		t.Fatalf("auto parallelism resolved to %d", c.Parallelism())
	}
}

func TestEncodeIntoValidation(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	c := mustCode(t, 9, 6)
	data := randStripeData(r, 6, 64)
	parity := make([][]byte, 3)
	for j := range parity {
		parity[j] = make([]byte, 64)
	}
	if err := c.EncodeInto(parity[:2], data); err == nil {
		t.Fatal("short parity slice accepted")
	}
	parity[1] = nil
	if err := c.EncodeInto(parity, data); err == nil {
		t.Fatal("nil parity destination accepted")
	}
	parity[1] = make([]byte, 63)
	if err := c.EncodeInto(parity, data); err == nil {
		t.Fatal("ragged parity destination accepted")
	}
}

func TestDecodeBlockIntoPooled(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	c := mustCode(t, 9, 6)
	orig, _ := c.Encode(randStripeData(r, 6, 512))
	shards := cloneShards(orig)
	shards[2] = nil
	blk := blockpool.GetBlock(512)
	defer blk.Release()
	if err := c.DecodeBlockInto(blk.B, 2, shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blk.B, orig[2]) {
		t.Fatal("DecodeBlockInto produced wrong bytes")
	}
	if err := c.DecodeBlockInto(make([]byte, 511), 2, shards); err == nil {
		t.Fatal("short destination accepted")
	}
}

func TestRepairShardIntoEveryPosition(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	const n, k = 9, 6
	c := mustCode(t, n, k)
	orig, _ := c.Encode(randStripeData(r, k, 4097))
	dst := make([]byte, 4097)
	for j := 0; j < n; j++ {
		shards := cloneShards(orig)
		shards[j] = nil
		if err := c.RepairShardInto(dst, j, shards); err != nil {
			t.Fatalf("repair %d: %v", j, err)
		}
		if !bytes.Equal(dst, orig[j]) {
			t.Fatalf("repair %d: wrong content", j)
		}
	}
	if err := c.RepairShardInto(make([]byte, 1), 0, orig); err == nil {
		t.Fatal("short destination accepted")
	}
}

func TestReconstructIntoUsesDestinations(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	const n, k = 10, 6
	c := mustCode(t, n, k)
	orig, _ := c.Encode(randStripeData(r, k, 300))
	shards := cloneShards(orig)
	shards[1], shards[4], shards[8] = nil, nil, nil
	dst := make([][]byte, n)
	dst[1] = make([]byte, 300)
	dst[4] = make([]byte, 300)
	// No destination for 8: must fall back to allocation.
	if err := c.ReconstructInto(shards, dst); err != nil {
		t.Fatal(err)
	}
	for idx := range orig {
		if !bytes.Equal(shards[idx], orig[idx]) {
			t.Fatalf("shard %d wrong after ReconstructInto", idx)
		}
	}
	if &shards[1][0] != &dst[1][0] || &shards[4][0] != &dst[4][0] {
		t.Fatal("ReconstructInto did not use the provided destinations")
	}
	// Destination shape errors.
	bad := cloneShards(orig)
	bad[0] = nil
	short := make([][]byte, n)
	short[0] = make([]byte, 10)
	if err := c.ReconstructInto(bad, short); err == nil {
		t.Fatal("short destination accepted")
	}
	if err := c.ReconstructInto(bad, make([][]byte, n-1)); err == nil {
		t.Fatal("wrong-length destination list accepted")
	}
}

// TestReconstructManyMissingBanked drives the banked multi-row rebuild
// (≥2 missing data rows) across segment boundaries.
func TestReconstructManyMissingBanked(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	const n, k = 20, 12
	c := mustCode(t, n, k)
	orig, err := c.Encode(randStripeData(r, k, 2*segmentSize+33))
	if err != nil {
		t.Fatal(err)
	}
	shards := cloneShards(orig)
	// 5 data + 3 parity lost — forces a multi-lane data bank and a
	// multi-lane parity bank.
	for _, idx := range []int{0, 2, 5, 7, 11, 13, 16, 19} {
		shards[idx] = nil
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for idx := range orig {
		if !bytes.Equal(shards[idx], orig[idx]) {
			t.Fatalf("shard %d wrong after banked reconstruct", idx)
		}
	}
}

func TestVerifySegmented(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	c := mustCode(t, 15, 8)
	shards, _ := c.Encode(randStripeData(r, 8, 3*segmentSize+5))
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v", ok, err)
	}
	// Corruption in the final partial segment must be caught.
	shards[10][len(shards[10])-1] ^= 1
	ok, err = c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify missed tail corruption")
	}
}

// FuzzEncodeDifferential feeds arbitrary payloads through Split +
// banked Encode and checks the stripe against the scalar reference
// encoder (and Verify).
func FuzzEncodeDifferential(f *testing.F) {
	f.Add([]byte{}, uint8(9), uint8(6))
	f.Add([]byte{1, 2, 3}, uint8(15), uint8(8))
	f.Add(bytes.Repeat([]byte{0xa5}, 600), uint8(5), uint8(5))
	f.Add(bytes.Repeat([]byte{7}, 1200), uint8(20), uint8(3))
	f.Fuzz(func(t *testing.T, payload []byte, nRaw, kRaw uint8) {
		n := int(nRaw)%30 + 1
		k := int(kRaw)%n + 1
		c, err := New(n, k)
		if err != nil {
			t.Skip()
		}
		data := c.Split(payload)
		want := refEncode(t, c, data)
		got, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				t.Fatalf("(%d,%d) payload %d bytes: shard %d diverges from scalar reference", n, k, len(payload), j)
			}
		}
		ok, err := c.Verify(got)
		if err != nil || !ok {
			t.Fatalf("(%d,%d): Verify = %v, %v", n, k, ok, err)
		}
	})
}

// TestSteadyStatePathsAllocFree pins the tentpole allocation claim at
// the unit level: cached-pattern EncodeInto, DecodeBlockInto,
// RepairShardInto, Verify and UpdateParity run without heap
// allocation once pools and caches are warm.
func TestSteadyStatePathsAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	c := mustCode(t, 15, 8)
	data := randStripeData(r, 8, 4096)
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	parity := make([][]byte, 7)
	for j := range parity {
		parity[j] = make([]byte, 4096)
	}
	degraded := cloneShards(shards)
	degraded[3] = nil
	dst := make([]byte, 4096)
	newBlock := make([]byte, 4096)
	r.Read(newBlock)
	// Warm pools and decode cache.
	if err := c.EncodeInto(parity, data); err != nil {
		t.Fatal(err)
	}
	if err := c.DecodeBlockInto(dst, 3, degraded); err != nil {
		t.Fatal(err)
	}
	if err := c.RepairShardInto(dst, 3, degraded); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(){
		"EncodeInto":      func() { _ = c.EncodeInto(parity, data) },
		"DecodeBlockInto": func() { _ = c.DecodeBlockInto(dst, 3, degraded) },
		"RepairShardInto": func() { _ = c.RepairShardInto(dst, 3, degraded) },
		"Verify":          func() { _, _ = c.Verify(shards) },
		"UpdateParity":    func() { c.UpdateParity(shards[9], 9, 3, data[3], newBlock) },
	}
	for name, f := range cases {
		if avg := testing.AllocsPerRun(50, f); avg > 0.5 {
			t.Errorf("%s allocates %.1f objects per op on the steady path", name, avg)
		}
	}
}
