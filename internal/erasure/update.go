package erasure

import (
	"fmt"

	"trapquorum/internal/gf256"
)

// DataDelta returns newData − oldData (elementwise XOR in GF(2^8)),
// the quantity (x − chunk) of Algorithm 1 line 27. Both slices must
// have equal length.
func DataDelta(oldData, newData []byte) []byte {
	if len(oldData) != len(newData) {
		panic(fmt.Sprintf("erasure: DataDelta length mismatch %d vs %d", len(oldData), len(newData)))
	}
	out := make([]byte, len(newData))
	copy(out, newData)
	gf256.XorSlice(out, oldData)
	return out
}

// ParityAdjustment returns α_{j,i}·delta: the buffer a parity node j
// adds to its block when data block i changed by delta. j must index a
// parity row (k ≤ j < n).
func (c *Code) ParityAdjustment(j, i int, delta []byte) []byte {
	if j < c.k || j >= c.n {
		panic(fmt.Sprintf("erasure: ParityAdjustment row %d is not a parity row of (%d,%d)", j, c.n, c.k))
	}
	out := make([]byte, len(delta))
	gf256.MulSlice(c.Coefficient(j, i), out, delta)
	return out
}

// ApplyAdjustment performs the node-side operation of Algorithm 1
// line 28 — b_j ← b_j + buf — in place on block.
func ApplyAdjustment(block, adjustment []byte) {
	if len(block) != len(adjustment) {
		panic(fmt.Sprintf("erasure: ApplyAdjustment length mismatch %d vs %d", len(block), len(adjustment)))
	}
	gf256.XorSlice(block, adjustment)
}

// UpdateParity is the full update pipeline for one parity block:
// it computes α_{j,i}·(new−old) and applies it to parity in place.
// Equivalent to, but cheaper than, re-encoding the stripe.
func (c *Code) UpdateParity(parity []byte, j, i int, oldData, newData []byte) {
	delta := DataDelta(oldData, newData)
	adj := c.ParityAdjustment(j, i, delta)
	ApplyAdjustment(parity, adj)
}
