package erasure

import (
	"fmt"

	"trapquorum/internal/blockpool"
	"trapquorum/internal/gf256"
)

// DataDelta returns newData − oldData (elementwise XOR in GF(2^8)),
// the quantity (x − chunk) of Algorithm 1 line 27. Both slices must
// have equal length.
func DataDelta(oldData, newData []byte) []byte {
	out := make([]byte, len(newData))
	DataDeltaInto(out, oldData, newData)
	return out
}

// DataDeltaInto computes newData − oldData into dst, overwriting it.
// All three slices must have equal length; dst may alias newData (the
// in-place delta of a buffer being replaced) but not oldData.
func DataDeltaInto(dst, oldData, newData []byte) {
	if len(oldData) != len(newData) || len(dst) != len(newData) {
		panic(fmt.Sprintf("erasure: DataDeltaInto length mismatch %d/%d/%d", len(dst), len(oldData), len(newData)))
	}
	copy(dst, newData)
	gf256.XorSlice(dst, oldData)
}

// ParityAdjustment returns α_{j,i}·delta: the buffer a parity node j
// adds to its block when data block i changed by delta. j must index a
// parity row (k ≤ j < n).
func (c *Code) ParityAdjustment(j, i int, delta []byte) []byte {
	out := make([]byte, len(delta))
	c.ParityAdjustmentInto(out, j, i, delta)
	return out
}

// ParityAdjustmentInto computes α_{j,i}·delta into dst, overwriting
// it; dst must have the delta's length and may alias delta. The
// allocation-free write-path primitive over pooled buffers.
func (c *Code) ParityAdjustmentInto(dst []byte, j, i int, delta []byte) {
	if j < c.k || j >= c.n {
		panic(fmt.Sprintf("erasure: ParityAdjustment row %d is not a parity row of (%d,%d)", j, c.n, c.k))
	}
	gf256.MulSlice(c.Coefficient(j, i), dst, delta)
}

// ApplyAdjustment performs the node-side operation of Algorithm 1
// line 28 — b_j ← b_j + buf — in place on block.
func ApplyAdjustment(block, adjustment []byte) {
	if len(block) != len(adjustment) {
		panic(fmt.Sprintf("erasure: ApplyAdjustment length mismatch %d vs %d", len(block), len(adjustment)))
	}
	gf256.XorSlice(block, adjustment)
}

// UpdateParity is the full update pipeline for one parity block:
// it computes α_{j,i}·(new−old) and applies it to parity in place.
// Equivalent to, but cheaper than, re-encoding the stripe; runs over
// pooled scratch, allocating nothing.
func (c *Code) UpdateParity(parity []byte, j, i int, oldData, newData []byte) {
	scratch := blockpool.GetBlock(len(newData))
	DataDeltaInto(scratch.B, oldData, newData)
	// parity ^= α·delta is a single fused multiply-accumulate; no
	// separate adjustment buffer needed.
	gf256.MulAddSlice(c.Coefficient(j, i), parity, scratch.B)
	scratch.Release()
}
