package erasure

import "encoding/binary"

// This file is the checksum primitive of the verified-read path (see
// DESIGN.md §6): a 64-bit hash over shard bytes, used for the
// cross-checksum records writers distribute to the quorum and for the
// node engine's local self-sums. The function is the XXH64 algorithm —
// implemented in-repo so the data plane stays dependency-free — chosen
// for its throughput on the word-wise access pattern the GF(256)
// kernels already optimise for. It is not a MAC: the threat model is
// bit-rot and a node lying about *content*, not an adversary who can
// also forge the independently stored metadata (that separation is the
// point of keeping checksums apart from the data they cover).

const (
	prime64x1 = 11400714785074694791
	prime64x2 = 14029467366897019727
	prime64x3 = 1609587929392839161
	prime64x4 = 9650029242287828579
	prime64x5 = 2870177450012600261
)

// Sum64 hashes b with XXH64 (seed 0). It allocates nothing and reads
// the input in 8-byte words, so hashing rides the same memory streams
// the encode/decode kernels do.
func Sum64(b []byte) uint64 {
	n := len(b)
	var h uint64
	if n >= 32 {
		var seed uint64 // variable so the lane inits wrap at runtime
		v1 := seed + prime64x1 + prime64x2
		v2 := seed + prime64x2
		v3 := seed
		v4 := seed - prime64x1
		for len(b) >= 32 {
			v1 = round64(v1, binary.LittleEndian.Uint64(b[0:8]))
			v2 = round64(v2, binary.LittleEndian.Uint64(b[8:16]))
			v3 = round64(v3, binary.LittleEndian.Uint64(b[16:24]))
			v4 = round64(v4, binary.LittleEndian.Uint64(b[24:32]))
			b = b[32:]
		}
		h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18)
		h = mergeRound64(h, v1)
		h = mergeRound64(h, v2)
		h = mergeRound64(h, v3)
		h = mergeRound64(h, v4)
	} else {
		h = prime64x5
	}
	h += uint64(n)
	for len(b) >= 8 {
		h ^= round64(0, binary.LittleEndian.Uint64(b[0:8]))
		h = rotl64(h, 27)*prime64x1 + prime64x4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b[0:4])) * prime64x1
		h = rotl64(h, 23)*prime64x2 + prime64x3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime64x5
		h = rotl64(h, 11) * prime64x1
	}
	h ^= h >> 33
	h *= prime64x2
	h ^= h >> 29
	h *= prime64x3
	h ^= h >> 32
	return h
}

func round64(acc, input uint64) uint64 {
	acc += input * prime64x2
	return rotl64(acc, 31) * prime64x1
}

func mergeRound64(acc, val uint64) uint64 {
	acc ^= round64(0, val)
	return acc*prime64x1 + prime64x4
}

func rotl64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }
