package erasure

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestDecodeCacheCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	c := mustCode(t, 12, 7)
	orig, err := c.Encode(randStripeData(r, 7, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Same erasure pattern twice: second decode hits the cache and
	// must produce identical output.
	for round := 0; round < 2; round++ {
		shards := cloneShards(orig)
		shards[1], shards[9] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		for idx := range shards {
			if !bytes.Equal(shards[idx], orig[idx]) {
				t.Fatalf("round %d: shard %d wrong", round, idx)
			}
		}
	}
	c.cacheMu.RLock()
	entries := len(c.decodeCache)
	c.cacheMu.RUnlock()
	if entries != 1 {
		t.Fatalf("cache holds %d entries, want 1", entries)
	}
}

func TestDecodeCacheDistinctPatterns(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	c := mustCode(t, 10, 6)
	orig, _ := c.Encode(randStripeData(r, 6, 32))
	patterns := [][]int{{0}, {1}, {0, 5}, {7, 9}, {2, 3, 4}}
	for _, pat := range patterns {
		shards := cloneShards(orig)
		for _, idx := range pat {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
	}
	c.cacheMu.RLock()
	entries := len(c.decodeCache)
	c.cacheMu.RUnlock()
	if entries != len(patterns) {
		t.Fatalf("cache holds %d entries, want %d", entries, len(patterns))
	}
}

// TestDecodeCacheConcurrency hammers decode from many goroutines with
// mixed patterns; run under -race this validates the cache locking.
func TestDecodeCacheConcurrency(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	c := mustCode(t, 10, 6)
	orig, _ := c.Encode(randStripeData(r, 6, 48))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				shards := cloneShards(orig)
				shards[(g+i)%10] = nil
				shards[(g+i+3)%10] = nil
				if err := c.Reconstruct(shards); err != nil {
					panic(err)
				}
				for idx := range shards {
					if !bytes.Equal(shards[idx], orig[idx]) {
						panic("wrong reconstruction under concurrency")
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkDecodeBlockCacheHit(b *testing.B) {
	r := rand.New(rand.NewSource(33))
	c := mustCode(b, 15, 8)
	orig, _ := c.Encode(randStripeData(r, 8, 4096))
	shards := cloneShards(orig)
	shards[3] = nil
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeBlock(3, shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBlockCacheCold(b *testing.B) {
	r := rand.New(rand.NewSource(34))
	data := randStripeData(r, 8, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := mustCode(b, 15, 8) // fresh code: empty cache
		shards, _ := c.Encode(data)
		shards[3] = nil
		b.StartTimer()
		if _, err := c.DecodeBlock(3, shards); err != nil {
			b.Fatal(err)
		}
	}
}
