package erasure

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func cacheEntries(c *Code) int {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	return c.decodeCache.len()
}

func TestDecodeCacheCorrectness(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	c := mustCode(t, 12, 7)
	orig, err := c.Encode(randStripeData(r, 7, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Same erasure pattern twice: second decode hits the cache and
	// must produce identical output.
	for round := 0; round < 2; round++ {
		shards := cloneShards(orig)
		shards[1], shards[9] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		for idx := range shards {
			if !bytes.Equal(shards[idx], orig[idx]) {
				t.Fatalf("round %d: shard %d wrong", round, idx)
			}
		}
	}
	if entries := cacheEntries(c); entries != 1 {
		t.Fatalf("cache holds %d entries, want 1", entries)
	}
}

func TestDecodeCacheDistinctPatterns(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	c := mustCode(t, 10, 6)
	orig, _ := c.Encode(randStripeData(r, 6, 32))
	patterns := [][]int{{0}, {1}, {0, 5}, {7, 9}, {2, 3, 4}}
	for _, pat := range patterns {
		shards := cloneShards(orig)
		for _, idx := range pat {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
	}
	if entries := cacheEntries(c); entries != len(patterns) {
		t.Fatalf("cache holds %d entries, want %d", entries, len(patterns))
	}
}

// cacheHasSurvivors reports whether the decode cache currently holds
// the entry for the given first-k survivor set.
func cacheHasSurvivors(c *Code, use []int) bool {
	key := make([]byte, len(use))
	for i, idx := range use {
		key[i] = byte(idx)
	}
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	_, ok := c.decodeCache.lookup(key)
	return ok
}

// firstKSurvivors returns the first k shard indices not in the erased
// set — the decode cache key the reconstruct will use.
func firstKSurvivors(n, k int, erased []int) []int {
	gone := make(map[int]bool, len(erased))
	for _, e := range erased {
		gone[e] = true
	}
	use := make([]int, 0, k)
	for i := 0; i < n && len(use) < k; i++ {
		if !gone[i] {
			use = append(use, i)
		}
	}
	return use
}

// TestDecodeCacheChurnEvicts is the regression test for the LRU
// semantics: churning through more *distinct survivor sets* than the
// limit must keep the cache bounded AND keep the patterns currently in
// rotation cached — the old stop-at-limit design filled up once and
// then refused every later pattern forever, so the most recent pattern
// would be absent. Distinctness matters: the cache key is the first-k
// survivor set, so the erasures are drawn as 5-subsets of the first 13
// shards, giving C(13,5) = 1287 distinct keys > decodeCacheLimit.
func TestDecodeCacheChurnEvicts(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	const n, k = 16, 8
	c := mustCode(t, n, k)
	orig, err := c.Encode(randStripeData(r, k, 48))
	if err != nil {
		t.Fatal(err)
	}
	distinct := 0
	var lastErased []int
	for a := 0; a < 13; a++ {
		for b := a + 1; b < 13; b++ {
			for d := b + 1; d < 13; d++ {
				for e := d + 1; e < 13; e++ {
					for f := e + 1; f < 13; f++ {
						erased := []int{a, b, d, e, f}
						shards := cloneShards(orig)
						for _, idx := range erased {
							shards[idx] = nil
						}
						if err := c.Reconstruct(shards); err != nil {
							t.Fatalf("erase %v: %v", erased, err)
						}
						for idx := range shards {
							if !bytes.Equal(shards[idx], orig[idx]) {
								t.Fatalf("erase %v: shard %d wrong", erased, idx)
							}
						}
						distinct++
						lastErased = erased
					}
				}
			}
		}
	}
	if distinct <= decodeCacheLimit {
		t.Fatalf("churned only %d distinct patterns, need > %d for the regression to bite", distinct, decodeCacheLimit)
	}
	if entries := cacheEntries(c); entries > decodeCacheLimit {
		t.Fatalf("cache grew to %d entries, limit %d", entries, decodeCacheLimit)
	}
	// The discriminating assertion: under LRU the most recently used
	// survivor set is cached; under the old stop-at-limit design every
	// pattern after the 1024th was refused, so it would be absent.
	if !cacheHasSurvivors(c, firstKSurvivors(n, k, lastErased)) {
		t.Fatalf("most recent survivor set not cached after churn — stop-at-limit regression")
	}
	// And the very first pattern must have been evicted, proving the
	// cache turned over rather than pinning the earliest entries.
	if cacheHasSurvivors(c, firstKSurvivors(n, k, []int{0, 1, 2, 3, 4})) {
		t.Fatalf("oldest survivor set still cached after churning %d patterns past the limit", distinct)
	}
}

// TestDecodeCacheLRUEviction pins the eviction order at the unit
// level: the least recently used entry goes first, and a lookup
// refreshes recency.
func TestDecodeCacheLRUEviction(t *testing.T) {
	dc := newDecodeCache(2)
	e1 := &decodeEntry{key: "a"}
	e2 := &decodeEntry{key: "b"}
	e3 := &decodeEntry{key: "c"}
	dc.insert(e1)
	dc.insert(e2)
	if _, ok := dc.lookup([]byte("a")); !ok {
		t.Fatal("entry a missing")
	}
	// a was just used; inserting c must evict b, not a.
	dc.insert(e3)
	if _, ok := dc.lookup([]byte("b")); ok {
		t.Fatal("LRU kept b, should have evicted it")
	}
	if _, ok := dc.lookup([]byte("a")); !ok {
		t.Fatal("LRU evicted a, the recently used entry")
	}
	if _, ok := dc.lookup([]byte("c")); !ok {
		t.Fatal("entry c missing")
	}
	if dc.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", dc.len())
	}
	// Re-inserting an existing key refreshes, not duplicates.
	dc.insert(&decodeEntry{key: "c"})
	if dc.len() != 2 {
		t.Fatalf("re-insert duplicated: %d entries", dc.len())
	}
}

// TestDecodeCacheConcurrency hammers decode from many goroutines with
// mixed patterns; run under -race this validates the cache locking.
func TestDecodeCacheConcurrency(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	c := mustCode(t, 10, 6)
	orig, _ := c.Encode(randStripeData(r, 6, 48))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				shards := cloneShards(orig)
				shards[(g+i)%10] = nil
				shards[(g+i+3)%10] = nil
				if err := c.Reconstruct(shards); err != nil {
					panic(err)
				}
				for idx := range shards {
					if !bytes.Equal(shards[idx], orig[idx]) {
						panic("wrong reconstruction under concurrency")
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkDecodeBlockCacheHit(b *testing.B) {
	r := rand.New(rand.NewSource(33))
	c := mustCode(b, 15, 8)
	orig, _ := c.Encode(randStripeData(r, 8, 4096))
	shards := cloneShards(orig)
	shards[3] = nil
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.DecodeBlockInto(dst, 3, shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBlockCacheCold(b *testing.B) {
	r := rand.New(rand.NewSource(34))
	data := randStripeData(r, 8, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := mustCode(b, 15, 8) // fresh code: empty cache
		shards, _ := c.Encode(data)
		shards[3] = nil
		b.StartTimer()
		if _, err := c.DecodeBlock(3, shards); err != nil {
			b.Fatal(err)
		}
	}
}
