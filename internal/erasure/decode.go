package erasure

import (
	"fmt"

	"trapquorum/internal/blockpool"
	"trapquorum/internal/gf256"
	"trapquorum/internal/matrix"
)

// mulAdd is a local alias keeping encode/decode call sites short.
func mulAdd(c byte, dst, src []byte) { gf256.MulAddSlice(c, dst, src) }

// decodeMatrix builds (or fetches from the LRU cache) the k×k inverse
// of the generator rows selected by the first k present shards,
// skipping shard index `exclude` (pass -1 to exclude nothing). The
// returned index list names the shards (in order) that the inverse's
// columns multiply; it is owned by the cache and must not be mutated.
// The inverse depends only on the survivor set, so repeated decodes
// under one failure pattern — the common case while a node is down —
// hit the cache without allocating.
func (c *Code) decodeMatrix(shards [][]byte, exclude int) (*matrix.Matrix, []int, error) {
	// Pack the first k present indices straight into a stack buffer:
	// it doubles as the cache key, so the hit path allocates nothing.
	var keyBuf [256]byte
	count := 0
	for i, s := range shards {
		if s == nil || i == exclude {
			continue
		}
		keyBuf[count] = byte(i)
		count++
		if count == c.k {
			break
		}
	}
	if count < c.k {
		return nil, nil, fmt.Errorf("%w: have %d of %d", ErrTooFew, count, c.k)
	}
	key := keyBuf[:c.k]
	c.cacheMu.Lock()
	if e, ok := c.decodeCache.lookup(key); ok {
		c.cacheMu.Unlock()
		return e.inv, e.use, nil
	}
	c.cacheMu.Unlock()
	use := make([]int, c.k)
	for t, b := range key {
		use[t] = int(b)
	}
	sub := c.gen.SelectRows(use)
	inv, err := sub.Invert()
	if err != nil {
		// Cannot happen for an MDS generator; report loudly if it does.
		return nil, nil, fmt.Errorf("erasure: MDS invariant violated for rows %v: %v", use, err)
	}
	e := &decodeEntry{key: string(key), inv: inv, use: use}
	c.cacheMu.Lock()
	c.decodeCache.insert(e)
	c.cacheMu.Unlock()
	return inv, use, nil
}

// DecodeBlock reconstructs original data block i (0 ≤ i < k) from any
// k present shards, without touching the rest of the stripe. This is
// the "Case 2" path of Algorithm 2: the node holding the original
// block is stale or down, and the block is decoded from k up-to-date
// blocks. The input is not modified.
func (c *Code) DecodeBlock(i int, shards [][]byte) ([]byte, error) {
	size, err := c.checkShape(shards)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	if err := c.decodeBlockInto(out, i, shards); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeBlockInto is DecodeBlock with a caller-provided destination:
// dst must have exactly the shard size and is fully overwritten. On
// the cached-decode path it performs no allocation, which makes it the
// steady-state read primitive over pooled buffers.
func (c *Code) DecodeBlockInto(dst []byte, i int, shards [][]byte) error {
	size, err := c.checkShape(shards)
	if err != nil {
		return err
	}
	if len(dst) != size {
		return fmt.Errorf("%w: destination has %d bytes, expected %d", ErrShardSize, len(dst), size)
	}
	return c.decodeBlockInto(dst, i, shards)
}

// decodeBlockInto is the shape-validated body shared by DecodeBlock
// and DecodeBlockInto: dst is known to match the shard size.
func (c *Code) decodeBlockInto(dst []byte, i int, shards [][]byte) error {
	if i < 0 || i >= c.k {
		return fmt.Errorf("erasure: DecodeBlock index %d out of range [0,%d)", i, c.k)
	}
	// Fast path: the systematic block itself is present.
	if shards[i] != nil {
		copy(dst, shards[i])
		return nil
	}
	inv, use, err := c.decodeMatrix(shards, -1)
	if err != nil {
		return err
	}
	row := inv.RowView(i)
	gf256.MulSlice(row[0], dst, shards[use[0]])
	for t := 1; t < len(use); t++ {
		mulAdd(row[t], dst, shards[use[t]])
	}
	return nil
}

// Reconstruct fills every nil entry of shards (data and parity alike)
// from the k (or more) present shards, in place, allocating the
// missing blocks. Present shards are never modified. It returns
// ErrTooFew when fewer than k shards are available.
func (c *Code) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, len(shards), nil)
}

// ReconstructData fills only the missing data blocks (indices < k),
// leaving missing parity blocks nil. Cheaper than Reconstruct when the
// caller only needs the original data.
func (c *Code) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, c.k, nil)
}

// ReconstructInto is Reconstruct with caller-provided destinations:
// dst[idx], when non-nil, receives the rebuilt shard idx instead of a
// fresh allocation (it must have exactly the shard size and is fully
// overwritten; shards[idx] is then set to dst[idx]). Missing
// destinations fall back to allocation, so a partial dst is fine.
// With every needed destination supplied the reconstruction runs
// allocation-free over pooled scratch.
func (c *Code) ReconstructInto(shards [][]byte, dst [][]byte) error {
	if dst != nil && len(dst) != len(shards) {
		return fmt.Errorf("%w: got %d destinations, want %d", ErrShardCount, len(dst), len(shards))
	}
	return c.reconstruct(shards, len(shards), dst)
}

// reconstruct fills the nil shards below `limit`, taking fill buffers
// from dst when provided.
func (c *Code) reconstruct(shards [][]byte, limit int, dst [][]byte) error {
	size, err := c.checkShape(shards)
	if err != nil {
		return err
	}
	// Validate every provided destination up front: a bad buffer must
	// fail the call before any shard has been rebuilt, not midway
	// through with shards half-mutated.
	for idx := range dst {
		if dst[idx] != nil && len(dst[idx]) != size {
			return fmt.Errorf("%w: destination %d has %d bytes, expected %d", ErrShardSize, idx, len(dst[idx]), size)
		}
	}
	missing := false
	for idx := 0; idx < limit; idx++ {
		if shards[idx] == nil {
			missing = true
			break
		}
	}
	if !missing {
		return nil
	}
	inv, use, err := c.decodeMatrix(shards, -1)
	if err != nil {
		return err
	}
	claim := func(idx int) []byte {
		if dst != nil && dst[idx] != nil {
			return dst[idx]
		}
		return make([]byte, size)
	}
	// Recover the missing data blocks first (d = G_S^{-1} · s), banked:
	// the packed-lane kernels rebuild up to 8 missing rows per
	// accumulation pass over the k survivors. The index scratch lives
	// on the stack (≤256 shards), keeping the steady state alloc-free.
	var missBuf [256]int
	missData := missBuf[:0:c.k]
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missData = append(missData, i)
		}
	}
	data := blockpool.GetShardList(c.k)
	defer data.Release()
	copy(data.S, shards[:c.k])
	if len(missData) > 0 {
		outs := blockpool.GetShardList(len(missData))
		defer outs.Release()
		rows := blockpool.GetShardList(len(missData))
		defer rows.Release()
		srcs := blockpool.GetShardList(len(use))
		defer srcs.Release()
		for t, shardIdx := range use {
			srcs.S[t] = shards[shardIdx]
		}
		for m, i := range missData {
			outs.S[m] = claim(i)
			rows.S[m] = inv.RowView(i)
		}
		c.rebuildRows(outs.S, rows.S, srcs.S, size)
		for m, i := range missData {
			data.S[i] = outs.S[m]
			if i < limit {
				shards[i] = outs.S[m]
			}
		}
	}
	// Re-encode any missing parity rows from the recovered data, again
	// banked over the generator rows.
	missParity := missBuf[c.k:c.k:256]
	for j := c.k; j < limit; j++ {
		if shards[j] == nil {
			missParity = append(missParity, j)
		}
	}
	if len(missParity) > 0 {
		outs := blockpool.GetShardList(len(missParity))
		defer outs.Release()
		rows := blockpool.GetShardList(len(missParity))
		defer rows.Release()
		for m, j := range missParity {
			outs.S[m] = claim(j)
			rows.S[m] = c.gen.RowView(j)
		}
		c.rebuildRows(outs.S, rows.S, data.S, size)
		for m, j := range missParity {
			shards[j] = outs.S[m]
		}
	}
	return nil
}

// rebuildRows computes dsts[r][m] = Σ_t coeffRows[r][t]·srcs[t][m] for
// every destination row, banking the rows into packed-lane passes of
// up to 8 and walking the blocks in cache-sized segments. A single row
// takes the row-wise kernels instead — the lane fan-out has nothing to
// feed there.
func (c *Code) rebuildRows(dsts [][]byte, coeffRows [][]byte, srcs [][]byte, size int) {
	if len(dsts) == 1 {
		row := coeffRows[0]
		gf256.MulSlice(row[0], dsts[0], srcs[0])
		for t := 1; t < len(srcs); t++ {
			mulAdd(row[t], dsts[0], srcs[t])
		}
		return
	}
	coeffs := make([]byte, 0, gf256.MaxLanes)
	for base := 0; base < len(dsts); base += gf256.MaxLanes {
		bankEnd := base + gf256.MaxLanes
		if bankEnd > len(dsts) {
			bankEnd = len(dsts)
		}
		tables := make([]*gf256.LaneTable, len(srcs))
		for t := range srcs {
			coeffs = coeffs[:0]
			for r := base; r < bankEnd; r++ {
				coeffs = append(coeffs, coeffRows[r][t])
			}
			tables[t] = gf256.NewLaneTable(coeffs)
		}
		rebuildSeg := func(lo, hi int) {
			acc := blockpool.GetWords(hi - lo)
			tables[0].Mul(acc.W, srcs[0][lo:hi])
			for t := 1; t < len(srcs); t++ {
				tables[t].MulAdd(acc.W, srcs[t][lo:hi])
			}
			var out [gf256.MaxLanes][]byte
			for r := base; r < bankEnd; r++ {
				out[r-base] = dsts[r][lo:hi]
			}
			gf256.ExtractLanes(out[:bankEnd-base], acc.W)
			acc.Release()
		}
		if c.parallelSegments(size) {
			c.forEachSegment(size, rebuildSeg)
			continue
		}
		for lo := 0; lo < size; lo += segmentSize {
			hi := lo + segmentSize
			if hi > size {
				hi = size
			}
			rebuildSeg(lo, hi)
		}
	}
}

// RepairShard performs the exact repair of a single lost shard: it
// recomputes block j (data or parity) from any k present shards and
// returns the new shard. shards[j] is ignored and may be nil. This is
// the recovery path run when a failed node rejoins.
func (c *Code) RepairShard(j int, shards [][]byte) ([]byte, error) {
	size, err := c.checkShape(shards)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	if err := c.repairShardInto(out, j, shards); err != nil {
		return nil, err
	}
	return out, nil
}

// RepairShardInto is RepairShard with a caller-provided destination:
// dst must have exactly the shard size, must not alias any shard, and
// is fully overwritten. On the cached-decode path it performs no
// allocation.
func (c *Code) RepairShardInto(dst []byte, j int, shards [][]byte) error {
	size, err := c.checkShape(shards)
	if err != nil {
		return err
	}
	if len(dst) != size {
		return fmt.Errorf("%w: destination has %d bytes, expected %d", ErrShardSize, len(dst), size)
	}
	return c.repairShardInto(dst, j, shards)
}

// repairShardInto is the shape-validated body shared by RepairShard
// and RepairShardInto.
func (c *Code) repairShardInto(dst []byte, j int, shards [][]byte) error {
	if j < 0 || j >= c.n {
		return fmt.Errorf("erasure: RepairShard index %d out of range [0,%d)", j, c.n)
	}
	// Select survivors with shard j masked out so it never contributes,
	// even when a (stale) copy is present.
	inv, use, err := c.decodeMatrix(shards, j)
	if err != nil {
		return err
	}
	// coeffs = row j of G · G_S^{-1}: maps the k selected shards
	// directly to shard j without materialising the data blocks.
	genRow := c.gen.RowView(j)
	var coeffBuf [256]byte
	coeffs := coeffBuf[:c.k]
	for t := 0; t < c.k; t++ {
		var acc byte
		for i := 0; i < c.k; i++ {
			acc ^= gf256.Mul(genRow[i], inv.At(i, t))
		}
		coeffs[t] = acc
	}
	gf256.MulSlice(coeffs[0], dst, shards[use[0]])
	for t := 1; t < len(use); t++ {
		mulAdd(coeffs[t], dst, shards[use[t]])
	}
	return nil
}
