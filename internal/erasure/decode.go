package erasure

import (
	"fmt"

	"trapquorum/internal/gf256"
	"trapquorum/internal/matrix"
)

// mulAdd is a local alias keeping encode/decode call sites short.
func mulAdd(c byte, dst, src []byte) { gf256.MulAddSlice(c, dst, src) }

// presentIndices returns the indices of non-nil shards, in order.
func presentIndices(shards [][]byte) []int {
	idx := make([]int, 0, len(shards))
	for i, s := range shards {
		if s != nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// decodeMatrix builds (or fetches from cache) the k×k inverse of the
// generator rows selected by the first k present shards. The returned
// index list names the shards (in order) that the inverse's columns
// multiply. The inverse depends only on the survivor set, so repeated
// decodes under one failure pattern — the common case while a node is
// down — hit the cache.
func (c *Code) decodeMatrix(shards [][]byte) (*matrix.Matrix, []int, error) {
	present := presentIndices(shards)
	if len(present) < c.k {
		return nil, nil, fmt.Errorf("%w: have %d of %d", ErrTooFew, len(present), c.k)
	}
	use := present[:c.k]
	key := useKey(use)
	c.cacheMu.RLock()
	inv, hit := c.decodeCache[key]
	c.cacheMu.RUnlock()
	if hit {
		return inv, use, nil
	}
	sub := c.gen.SelectRows(use)
	inv, err := sub.Invert()
	if err != nil {
		// Cannot happen for an MDS generator; report loudly if it does.
		return nil, nil, fmt.Errorf("erasure: MDS invariant violated for rows %v: %v", use, err)
	}
	c.cacheMu.Lock()
	if len(c.decodeCache) < decodeCacheLimit {
		c.decodeCache[key] = inv
	}
	c.cacheMu.Unlock()
	return inv, use, nil
}

// useKey renders a shard-index list as a cache key (indices < 256).
func useKey(use []int) string {
	b := make([]byte, len(use))
	for i, idx := range use {
		b[i] = byte(idx)
	}
	return string(b)
}

// DecodeBlock reconstructs original data block i (0 ≤ i < k) from any
// k present shards, without touching the rest of the stripe. This is
// the "Case 2" path of Algorithm 2: the node holding the original
// block is stale or down, and the block is decoded from k up-to-date
// blocks. The input is not modified.
func (c *Code) DecodeBlock(i int, shards [][]byte) ([]byte, error) {
	if i < 0 || i >= c.k {
		return nil, fmt.Errorf("erasure: DecodeBlock index %d out of range [0,%d)", i, c.k)
	}
	size, err := c.checkShape(shards)
	if err != nil {
		return nil, err
	}
	// Fast path: the systematic block itself is present.
	if shards[i] != nil {
		out := make([]byte, size)
		copy(out, shards[i])
		return out, nil
	}
	inv, use, err := c.decodeMatrix(shards)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	row := inv.Row(i)
	for t, shardIdx := range use {
		mulAdd(row[t], out, shards[shardIdx])
	}
	return out, nil
}

// Reconstruct fills every nil entry of shards (data and parity alike)
// from the k (or more) present shards, in place. Present shards are
// never modified. It returns ErrTooFew when fewer than k shards are
// available.
func (c *Code) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, len(shards))
}

// ReconstructData fills only the missing data blocks (indices < k),
// leaving missing parity blocks nil. Cheaper than Reconstruct when the
// caller only needs the original data.
func (c *Code) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, c.k)
}

func (c *Code) reconstruct(shards [][]byte, limit int) error {
	size, err := c.checkShape(shards)
	if err != nil {
		return err
	}
	missing := false
	for idx := 0; idx < limit; idx++ {
		if shards[idx] == nil {
			missing = true
			break
		}
	}
	if !missing {
		return nil
	}
	inv, use, err := c.decodeMatrix(shards)
	if err != nil {
		return err
	}
	// Recover the data blocks first (d = G_S^{-1} · s).
	data := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			data[i] = shards[i]
			continue
		}
		out := make([]byte, size)
		row := inv.Row(i)
		for t, shardIdx := range use {
			mulAdd(row[t], out, shards[shardIdx])
		}
		data[i] = out
		if i < limit {
			shards[i] = out
		}
	}
	// Re-encode any missing parity rows from the recovered data.
	for j := c.k; j < limit; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		c.encodeRowInto(out, j, data)
		shards[j] = out
	}
	return nil
}

// RepairShard performs the exact repair of a single lost shard: it
// recomputes block j (data or parity) from any k present shards and
// returns the new shard. shards[j] is ignored and may be nil. This is
// the recovery path run when a failed node rejoins.
func (c *Code) RepairShard(j int, shards [][]byte) ([]byte, error) {
	if j < 0 || j >= c.n {
		return nil, fmt.Errorf("erasure: RepairShard index %d out of range [0,%d)", j, c.n)
	}
	size, err := c.checkShape(shards)
	if err != nil {
		return nil, err
	}
	// Work on a view with shard j masked out so it never contributes.
	masked := make([][]byte, len(shards))
	copy(masked, shards)
	masked[j] = nil
	inv, use, err := c.decodeMatrix(masked)
	if err != nil {
		return nil, err
	}
	// coeffs = row j of G · G_S^{-1}: maps the k selected shards
	// directly to shard j without materialising the data blocks.
	genRow := c.gen.Row(j)
	coeffs := make([]byte, c.k)
	for t := 0; t < c.k; t++ {
		var acc byte
		for i := 0; i < c.k; i++ {
			acc ^= gf256.Mul(genRow[i], inv.At(i, t))
		}
		coeffs[t] = acc
	}
	out := make([]byte, size)
	for t, shardIdx := range use {
		mulAdd(coeffs[t], out, masked[shardIdx])
	}
	return out, nil
}
