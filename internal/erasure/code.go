// Package erasure implements the systematic (n,k) MDS erasure code the
// TRAP-ERC protocol stores stripes with (paper §III-A).
//
// A stripe holds n blocks: the k original data blocks b_1..b_k stored
// verbatim, plus n−k parity blocks b_j = Σ_i α_{j,i}·b_i over GF(2^8)
// (equation 1 of the paper). Any k of the n blocks reconstruct the
// original data (the MDS property).
//
// The package also exposes the in-place update primitive of
// Algorithm 1: when block i changes from old to x, each parity node j
// applies b_j ^= α_{j,i}·(x − old), which commutes with concurrent
// updates of other data blocks — the reason Galois-field codes admit
// quorum-style partial writes.
package erasure

import (
	"errors"
	"fmt"
	"sync"

	"trapquorum/internal/matrix"
)

// Common parameter and shard-shape errors.
var (
	ErrShardCount  = errors.New("erasure: wrong number of shards")
	ErrShardSize   = errors.New("erasure: shards have inconsistent sizes")
	ErrTooFew      = errors.New("erasure: fewer than k shards present")
	ErrEmptyShards = errors.New("erasure: no shard data present")
)

// decodeCacheLimit bounds the number of cached decode inverses; each
// failure pattern seen in practice is one entry, so the bound only
// matters for adversarial churn.
const decodeCacheLimit = 1024

// Code is a systematic (n,k) MDS erasure code. The generator matrix is
// immutable; a bounded cache of decode-matrix inverses (keyed by the
// survivor set) is maintained behind a lock, so the type is safe for
// concurrent use.
type Code struct {
	n, k int
	gen  *matrix.Matrix // n×k systematic generator; top k×k = I

	cacheMu     sync.RWMutex
	decodeCache map[string]*matrix.Matrix
}

// New constructs an (n,k) code. Requirements: 1 ≤ k ≤ n ≤ 256.
func New(n, k int) (*Code, error) {
	if k < 1 || n < k || n > 256 {
		return nil, fmt.Errorf("erasure: invalid parameters n=%d k=%d (need 1 <= k <= n <= 256)", n, k)
	}
	gen, err := matrix.Systematic(n, k)
	if err != nil {
		return nil, err
	}
	return &Code{n: n, k: k, gen: gen, decodeCache: make(map[string]*matrix.Matrix)}, nil
}

// N returns the total number of blocks per stripe.
func (c *Code) N() int { return c.n }

// K returns the number of original data blocks per stripe.
func (c *Code) K() int { return c.k }

// ParityCount returns n − k, the number of redundant blocks.
func (c *Code) ParityCount() int { return c.n - c.k }

// Coefficient returns α_{j,i}: the generator coefficient applied to
// data block i (0-based, 0 ≤ i < k) in the encoding of block j
// (0 ≤ j < n). For j < k this is 1 when j == i and 0 otherwise
// (systematic blocks), matching the paper's indexing where parity rows
// are k+1 ≤ j ≤ n.
func (c *Code) Coefficient(j, i int) byte {
	if j < 0 || j >= c.n || i < 0 || i >= c.k {
		panic(fmt.Sprintf("erasure: Coefficient(%d,%d) out of range for (%d,%d) code", j, i, c.n, c.k))
	}
	return c.gen.At(j, i)
}

// GeneratorRow returns a copy of row j of the generator matrix.
func (c *Code) GeneratorRow(j int) []byte {
	if j < 0 || j >= c.n {
		panic(fmt.Sprintf("erasure: GeneratorRow(%d) out of range", j))
	}
	return c.gen.Row(j)
}

// checkShape validates that shards has exactly n entries, that all
// non-nil entries share one size, and returns that size. At least one
// shard must be present.
func (c *Code) checkShape(shards [][]byte) (int, error) {
	if len(shards) != c.n {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	size := -1
	for idx, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, expected %d", ErrShardSize, idx, len(s), size)
		}
	}
	if size <= 0 {
		return 0, ErrEmptyShards
	}
	return size, nil
}

// Encode computes the n−k parity blocks for the given k data blocks
// and returns the full stripe of n shards. The returned slice aliases
// the input data blocks (they are stored verbatim — the code is
// systematic) and owns freshly allocated parity blocks. All data
// blocks must be non-nil and the same size.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: got %d data blocks, want %d", ErrShardCount, len(data), c.k)
	}
	size := -1
	for i, d := range data {
		if d == nil {
			return nil, fmt.Errorf("erasure: data block %d is nil", i)
		}
		if size == -1 {
			size = len(d)
		} else if len(d) != size {
			return nil, fmt.Errorf("%w: data block %d has %d bytes, expected %d", ErrShardSize, i, len(d), size)
		}
	}
	if size == 0 {
		return nil, ErrEmptyShards
	}
	shards := make([][]byte, c.n)
	copy(shards, data)
	for j := c.k; j < c.n; j++ {
		shards[j] = make([]byte, size)
		c.encodeRowInto(shards[j], j, data)
	}
	return shards, nil
}

// encodeRowInto writes block j of the stripe (Σ α_{j,i}·data[i]) into dst.
func (c *Code) encodeRowInto(dst []byte, j int, data [][]byte) {
	row := c.gen.Row(j)
	for i := range dst {
		dst[i] = 0
	}
	for i, coeff := range row {
		mulAdd(coeff, dst, data[i])
	}
}

// Verify checks that the parity blocks are consistent with the data
// blocks. All n shards must be present (non-nil); use Reconstruct
// first if some are missing.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShape(shards)
	if err != nil {
		return false, err
	}
	for _, s := range shards {
		if s == nil {
			return false, errors.New("erasure: Verify requires all shards present")
		}
	}
	buf := make([]byte, size)
	for j := c.k; j < c.n; j++ {
		c.encodeRowInto(buf, j, shards[:c.k])
		if !bytesEqual(buf, shards[j]) {
			return false, nil
		}
	}
	return true, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
