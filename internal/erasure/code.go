// Package erasure implements the systematic (n,k) MDS erasure code the
// TRAP-ERC protocol stores stripes with (paper §III-A).
//
// A stripe holds n blocks: the k original data blocks b_1..b_k stored
// verbatim, plus n−k parity blocks b_j = Σ_i α_{j,i}·b_i over GF(2^8)
// (equation 1 of the paper). Any k of the n blocks reconstruct the
// original data (the MDS property).
//
// The package also exposes the in-place update primitive of
// Algorithm 1: when block i changes from old to x, each parity node j
// applies b_j ^= α_{j,i}·(x − old), which commutes with concurrent
// updates of other data blocks — the reason Galois-field codes admit
// quorum-style partial writes.
//
// Data-plane layout. The coding kernels run word-wise (gf256's packed
// lane tables: one table lookup per source byte feeds up to 8 parity
// rows), blocks are processed in cache-sized segments that can be
// fanned across a bounded worker set (WithParallelism), and every hot
// operation has a destination-buffer variant (EncodeInto,
// ReconstructInto, RepairShardInto, DecodeBlockInto) so steady-state
// traffic runs allocation-free over pooled buffers. See DESIGN.md
// "Buffer ownership" for the aliasing and retention rules.
package erasure

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"trapquorum/internal/blockpool"
	"trapquorum/internal/dispatch"
	"trapquorum/internal/gf256"
	"trapquorum/internal/matrix"
)

// Common parameter and shard-shape errors.
var (
	ErrShardCount  = errors.New("erasure: wrong number of shards")
	ErrShardSize   = errors.New("erasure: shards have inconsistent sizes")
	ErrTooFew      = errors.New("erasure: fewer than k shards present")
	ErrEmptyShards = errors.New("erasure: no shard data present")
)

// decodeCacheLimit bounds the number of cached decode inverses. The
// cache is an LRU: each failure pattern seen in practice is one entry,
// and churn beyond the limit evicts the coldest pattern instead of
// refusing to cache new ones, so long-lived clusters never regress to
// re-inverting matrices for their current failure pattern.
const decodeCacheLimit = 1024

// segmentSize is the number of positions one coding segment covers.
// The packed-lane accumulator for a segment is 8× that in bytes
// (32 KiB), which keeps the accumulator plus the k source segments
// resident in L1/L2 across the k accumulation passes — the cache
// blocking that makes the lane kernels stream at word speed — and is
// also the fan-out grain of the stripe-parallel coder.
const segmentSize = 4096

// Option configures a Code at construction.
type Option func(*Code)

// WithParallelism bounds the worker set the stripe-parallel coder fans
// block segments across. 1 (the default) keeps coding on the calling
// goroutine; p > 1 allows up to p concurrent segment workers for
// blocks large enough to split (≥ 2 segments); 0 resolves to
// runtime.GOMAXPROCS(0). Negative values panic.
func WithParallelism(p int) Option {
	if p < 0 {
		panic(fmt.Sprintf("erasure: WithParallelism(%d): need >= 0", p))
	}
	return func(c *Code) {
		if p == 0 {
			c.parallel = runtime.GOMAXPROCS(0)
			return
		}
		c.parallel = p
	}
}

// Code is a systematic (n,k) MDS erasure code. The generator matrix is
// immutable; a bounded LRU cache of decode-matrix inverses (keyed by
// the survivor set) is maintained behind a lock, so the type is safe
// for concurrent use.
type Code struct {
	n, k     int
	gen      *matrix.Matrix // n×k systematic generator; top k×k = I
	parallel int            // segment-worker bound (≥ 1)

	// encOnce guards the lazily built encode tables.
	// encBanks[b][i] packs, for data column i, the coefficients of the
	// ≤8 parity rows of bank b (rows k+8b .. min(k+8b+8, n)) — the
	// packed-lane path. encBankCoeffs[b][i] holds the same coefficients
	// as plain bytes for the SIMD row fan-out, and encRows[j] is parity
	// row j's full coefficient vector for row-wise verification.
	encOnce       sync.Once
	encBanks      [][]*gf256.LaneTable
	encBankCoeffs [][][]byte
	encRows       [][]byte

	cacheMu     sync.Mutex
	decodeCache *decodeCache
}

// New constructs an (n,k) code. Requirements: 1 ≤ k ≤ n ≤ 256.
func New(n, k int, opts ...Option) (*Code, error) {
	if k < 1 || n < k || n > 256 {
		return nil, fmt.Errorf("erasure: invalid parameters n=%d k=%d (need 1 <= k <= n <= 256)", n, k)
	}
	gen, err := matrix.Systematic(n, k)
	if err != nil {
		return nil, err
	}
	c := &Code{n: n, k: k, gen: gen, parallel: 1, decodeCache: newDecodeCache(decodeCacheLimit)}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// N returns the total number of blocks per stripe.
func (c *Code) N() int { return c.n }

// K returns the number of original data blocks per stripe.
func (c *Code) K() int { return c.k }

// ParityCount returns n − k, the number of redundant blocks.
func (c *Code) ParityCount() int { return c.n - c.k }

// Parallelism returns the configured segment-worker bound.
func (c *Code) Parallelism() int { return c.parallel }

// Coefficient returns α_{j,i}: the generator coefficient applied to
// data block i (0-based, 0 ≤ i < k) in the encoding of block j
// (0 ≤ j < n). For j < k this is 1 when j == i and 0 otherwise
// (systematic blocks), matching the paper's indexing where parity rows
// are k+1 ≤ j ≤ n.
func (c *Code) Coefficient(j, i int) byte {
	if j < 0 || j >= c.n || i < 0 || i >= c.k {
		panic(fmt.Sprintf("erasure: Coefficient(%d,%d) out of range for (%d,%d) code", j, i, c.n, c.k))
	}
	return c.gen.At(j, i)
}

// GeneratorRow returns a copy of row j of the generator matrix.
func (c *Code) GeneratorRow(j int) []byte {
	if j < 0 || j >= c.n {
		panic(fmt.Sprintf("erasure: GeneratorRow(%d) out of range", j))
	}
	return c.gen.Row(j)
}

// checkShape validates that shards has exactly n entries, that all
// non-nil entries share one size, and returns that size. At least one
// shard must be present.
func (c *Code) checkShape(shards [][]byte) (int, error) {
	if len(shards) != c.n {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	size := -1
	for idx, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, expected %d", ErrShardSize, idx, len(s), size)
		}
	}
	if size <= 0 {
		return 0, ErrEmptyShards
	}
	return size, nil
}

// DataSize validates that data holds exactly k non-nil, equally sized,
// non-empty blocks — the encode-input contract — and returns the
// common block size. Callers that must size destination buffers before
// calling EncodeInto (the protocol's pooled seeding path) use it so
// validation lives in one place.
func (c *Code) DataSize(data [][]byte) (int, error) { return c.checkData(data) }

// checkData validates the k data blocks of an encode and returns the
// common block size.
func (c *Code) checkData(data [][]byte) (int, error) {
	if len(data) != c.k {
		return 0, fmt.Errorf("%w: got %d data blocks, want %d", ErrShardCount, len(data), c.k)
	}
	size := -1
	for i, d := range data {
		if d == nil {
			return 0, fmt.Errorf("erasure: data block %d is nil", i)
		}
		if size == -1 {
			size = len(d)
		} else if len(d) != size {
			return 0, fmt.Errorf("%w: data block %d has %d bytes, expected %d", ErrShardSize, i, len(d), size)
		}
	}
	if size == 0 {
		return 0, ErrEmptyShards
	}
	return size, nil
}

// encTables returns the lazily built packed-lane encode tables, one
// bank of ≤8 parity rows per entry, one LaneTable per data column
// within a bank. Built once per Code; safe for concurrent use.
func (c *Code) encTables() [][]*gf256.LaneTable {
	c.encOnce.Do(func() {
		parity := c.n - c.k
		nbanks := (parity + gf256.MaxLanes - 1) / gf256.MaxLanes
		banks := make([][]*gf256.LaneTable, nbanks)
		bankCoeffs := make([][][]byte, nbanks)
		for b := 0; b < nbanks; b++ {
			rows := gf256.MaxLanes
			if rem := parity - b*gf256.MaxLanes; rem < rows {
				rows = rem
			}
			tables := make([]*gf256.LaneTable, c.k)
			cols := make([][]byte, c.k)
			for i := 0; i < c.k; i++ {
				coeffs := make([]byte, rows)
				for r := 0; r < rows; r++ {
					coeffs[r] = c.gen.At(c.k+b*gf256.MaxLanes+r, i)
				}
				tables[i] = gf256.NewLaneTable(coeffs)
				cols[i] = coeffs
			}
			banks[b] = tables
			bankCoeffs[b] = cols
		}
		c.encBanks = banks
		c.encBankCoeffs = bankCoeffs
		rows := make([][]byte, parity)
		for j := range rows {
			rows[j] = c.gen.Row(c.k + j)
		}
		c.encRows = rows
	})
	return c.encBanks
}

// parallelSegments reports whether a block of the given size gets its
// segments fanned across workers (rather than walked serially on the
// calling goroutine).
func (c *Code) parallelSegments(size int) bool {
	return c.parallel > 1 && size > segmentSize
}

// forEachSegment fans f over the segment ranges [lo,hi) covering
// [0,size) with at most `parallel` workers. Callers on the serial path
// walk the segments inline instead — a closure-free loop — so the
// steady state allocates nothing; this helper is the parallel arm.
func (c *Code) forEachSegment(size int, f func(lo, hi int)) {
	nseg := (size + segmentSize - 1) / segmentSize
	// Coding segments are pure CPU work that always runs to completion,
	// so the fan-out gets a never-cancelled context.
	dispatch.Fanout(context.Background(), c.parallel, nseg, func(_ context.Context, seg int) (struct{}, error) {
		lo := seg * segmentSize
		hi := lo + segmentSize
		if hi > size {
			hi = size
		}
		f(lo, hi)
		return struct{}{}, nil
	}, func(int, struct{}, error) bool { return true })
}

// encodeSegment computes every parity row over positions [lo,hi).
//
// On SIMD builds it runs the row fan-out: per bank of ≤8 parity rows,
// one vector Mul/MulAdd pass per data column — the column's segment
// stays hot across the bank's rows, and no lane transpose is needed.
// On portable builds it runs the packed-lane path: one accumulation
// pass per bank (k lookups per position feeding the bank's ≤8 rows at
// once), then a word-wise lane extraction into each parity block.
func (c *Code) encodeSegment(parity [][]byte, data [][]byte, lo, hi int) {
	banks := c.encTables()
	if gf256.Accelerated() {
		var dsts [gf256.MaxLanes][]byte
		for b, cols := range c.encBankCoeffs {
			base := b * gf256.MaxLanes
			rows := len(cols[0])
			for lane := 0; lane < rows; lane++ {
				dsts[lane] = parity[base+lane][lo:hi]
			}
			gf256.MulRows(cols[0], dsts[:rows], data[0][lo:hi])
			for i := 1; i < len(cols); i++ {
				gf256.MulAddRows(cols[i], dsts[:rows], data[i][lo:hi])
			}
		}
		return
	}
	acc := blockpool.GetWords(hi - lo)
	var dsts [gf256.MaxLanes][]byte
	for b, tables := range banks {
		tables[0].Mul(acc.W, data[0][lo:hi])
		for i := 1; i < len(tables); i++ {
			tables[i].MulAdd(acc.W, data[i][lo:hi])
		}
		base := b * gf256.MaxLanes
		lanes := tables[0].Lanes()
		for lane := 0; lane < lanes; lane++ {
			dsts[lane] = parity[base+lane][lo:hi]
		}
		gf256.ExtractLanes(dsts[:lanes], acc.W)
	}
	acc.Release()
}

// EncodeInto computes the n−k parity blocks of the stripe into the
// caller-provided destination blocks: parity[j] receives stripe block
// k+j. Every destination must be non-nil with exactly the data block
// size and must not alias any data block. The destinations are fully
// overwritten, so pooled buffers need no clearing. EncodeInto performs
// no allocation beyond pooled scratch.
func (c *Code) EncodeInto(parity [][]byte, data [][]byte) error {
	size, err := c.checkData(data)
	if err != nil {
		return err
	}
	if len(parity) != c.n-c.k {
		return fmt.Errorf("%w: got %d parity blocks, want %d", ErrShardCount, len(parity), c.n-c.k)
	}
	for j, p := range parity {
		if p == nil {
			return fmt.Errorf("erasure: parity destination %d is nil", j)
		}
		if len(p) != size {
			return fmt.Errorf("%w: parity destination %d has %d bytes, expected %d", ErrShardSize, j, len(p), size)
		}
	}
	if c.parallelSegments(size) {
		c.forEachSegment(size, func(lo, hi int) {
			c.encodeSegment(parity, data, lo, hi)
		})
		return nil
	}
	for lo := 0; lo < size; lo += segmentSize {
		hi := lo + segmentSize
		if hi > size {
			hi = size
		}
		c.encodeSegment(parity, data, lo, hi)
	}
	return nil
}

// Encode computes the n−k parity blocks for the given k data blocks
// and returns the full stripe of n shards. The returned slice aliases
// the input data blocks (they are stored verbatim — the code is
// systematic) and owns freshly allocated parity blocks. All data
// blocks must be non-nil and the same size.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	size, err := c.checkData(data)
	if err != nil {
		return nil, err
	}
	shards := make([][]byte, c.n)
	copy(shards, data)
	for j := c.k; j < c.n; j++ {
		shards[j] = make([]byte, size)
	}
	if err := c.EncodeInto(shards[c.k:], data); err != nil {
		return nil, err
	}
	return shards, nil
}

// encodeRowInto writes block j of the stripe (Σ α_{j,i}·data[i]) into
// dst, overwriting it. Row-wise: the single-row path used by repair and
// reconstruction, where only one output row is needed and the lane
// layout would waste its fan-out.
func (c *Code) encodeRowInto(dst []byte, j int, data [][]byte) {
	row := c.gen.Row(j)
	gf256.MulSlice(row[0], dst, data[0])
	for i := 1; i < len(row); i++ {
		gf256.MulAddSlice(row[i], dst, data[i])
	}
}

// Verify checks that the parity blocks are consistent with the data
// blocks. All n shards must be present (non-nil); use Reconstruct
// first if some are missing. Verification re-derives the parity
// word-wise per segment and compares lanes in place, allocating
// nothing beyond pooled scratch.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShape(shards)
	if err != nil {
		return false, err
	}
	for _, s := range shards {
		if s == nil {
			return false, errors.New("erasure: Verify requires all shards present")
		}
	}
	banks := c.encTables()
	data := shards[:c.k]
	ok := true
	// Serial segment walk: verification short-circuits on the first
	// mismatch, which a parallel fan-out would give up.
	for lo := 0; lo < size && ok; lo += segmentSize {
		hi := lo + segmentSize
		if hi > size {
			hi = size
		}
		if gf256.Accelerated() {
			// SIMD row fan-out: re-derive each parity row into pooled
			// scratch and compare, short-circuiting on the first bad row.
			scratch := blockpool.GetBlock(hi - lo)
			for j, row := range c.encRows {
				gf256.MulSlice(row[0], scratch.B, data[0][lo:hi])
				for i := 1; i < len(row); i++ {
					gf256.MulAddSlice(row[i], scratch.B, data[i][lo:hi])
				}
				if !bytes.Equal(scratch.B, shards[c.k+j][lo:hi]) {
					ok = false
					break
				}
			}
			scratch.Release()
			continue
		}
		acc := blockpool.GetWords(hi - lo)
		var wants [gf256.MaxLanes][]byte
		for b, tables := range banks {
			tables[0].Mul(acc.W, data[0][lo:hi])
			for i := 1; i < len(tables); i++ {
				tables[i].MulAdd(acc.W, data[i][lo:hi])
			}
			base := c.k + b*gf256.MaxLanes
			lanes := tables[0].Lanes()
			for lane := 0; lane < lanes; lane++ {
				wants[lane] = shards[base+lane][lo:hi]
			}
			if !gf256.LanesEqual(wants[:lanes], acc.W) {
				ok = false
				break
			}
		}
		acc.Release()
	}
	return ok, nil
}
