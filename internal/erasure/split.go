package erasure

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Join when the destination size exceeds
// the stripe's payload.
var ErrShortBuffer = errors.New("erasure: stripe holds fewer bytes than requested")

// Split divides an arbitrary buffer into the k equally sized data
// blocks of one stripe, zero-padding the tail. The blocks are copies;
// mutating them does not affect src. An empty buffer yields k blocks
// of one zero byte each so that the stripe stays well-formed.
func (c *Code) Split(src []byte) [][]byte {
	per := (len(src) + c.k - 1) / c.k
	if per == 0 {
		per = 1
	}
	out := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		block := make([]byte, per)
		lo := i * per
		if lo < len(src) {
			hi := lo + per
			if hi > len(src) {
				hi = len(src)
			}
			copy(block, src[lo:hi])
		}
		out[i] = block
	}
	return out
}

// Join concatenates the k data blocks back into a buffer of exactly
// size bytes (the original pre-Split length). It fails if the blocks
// hold fewer than size bytes or if the block count is wrong.
func (c *Code) Join(data [][]byte, size int) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: got %d data blocks, want %d", ErrShardCount, len(data), c.k)
	}
	total := 0
	for i, d := range data {
		if d == nil {
			return nil, fmt.Errorf("erasure: data block %d is nil", i)
		}
		total += len(d)
	}
	if size < 0 || size > total {
		return nil, fmt.Errorf("%w: stripe holds %d bytes, requested %d", ErrShortBuffer, total, size)
	}
	out := make([]byte, 0, size)
	for _, d := range data {
		if len(out)+len(d) > size {
			out = append(out, d[:size-len(out)]...)
			break
		}
		out = append(out, d...)
	}
	return out, nil
}
