package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func mustCode(t testing.TB, n, k int) *Code {
	t.Helper()
	c, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randStripeData(r *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		r.Read(data[i])
	}
	return data
}

func cloneShards(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		if s != nil {
			out[i] = append([]byte(nil), s...)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n, k int
		ok   bool
	}{
		{9, 6, true}, {15, 8, true}, {1, 1, true}, {256, 100, true},
		{0, 0, false}, {5, 0, false}, {4, 5, false}, {257, 8, false}, {-1, -1, false},
	}
	for _, c := range cases {
		_, err := New(c.n, c.k)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d) err=%v, want ok=%v", c.n, c.k, err, c.ok)
		}
	}
}

func TestAccessors(t *testing.T) {
	c := mustCode(t, 9, 6)
	if c.N() != 9 || c.K() != 6 || c.ParityCount() != 3 {
		t.Fatalf("N=%d K=%d Parity=%d", c.N(), c.K(), c.ParityCount())
	}
}

func TestCoefficientSystematic(t *testing.T) {
	c := mustCode(t, 9, 6)
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if c.Coefficient(j, i) != want {
				t.Fatalf("Coefficient(%d,%d) = %d, want %d", j, i, c.Coefficient(j, i), want)
			}
		}
	}
}

func TestCoefficientOutOfRangePanics(t *testing.T) {
	c := mustCode(t, 9, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Coefficient(9, 0)
}

func TestGeneratorRowMatchesCoefficient(t *testing.T) {
	c := mustCode(t, 9, 6)
	for j := 0; j < 9; j++ {
		row := c.GeneratorRow(j)
		for i := 0; i < 6; i++ {
			if row[i] != c.Coefficient(j, i) {
				t.Fatalf("row %d col %d mismatch", j, i)
			}
		}
	}
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, params := range [][2]int{{9, 6}, {15, 8}, {6, 4}, {4, 1}, {5, 5}} {
		c := mustCode(t, params[0], params[1])
		shards, err := c.Encode(randStripeData(r, c.K(), 128))
		if err != nil {
			t.Fatal(err)
		}
		ok, err := c.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("(%d,%d): Verify = %v, %v", params[0], params[1], ok, err)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	c := mustCode(t, 9, 6)
	shards, _ := c.Encode(randStripeData(r, 6, 64))
	shards[7][13] ^= 0x40
	ok, err := c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify passed corrupted parity")
	}
}

func TestVerifyRequiresAllShards(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := mustCode(t, 9, 6)
	shards, _ := c.Encode(randStripeData(r, 6, 64))
	shards[2] = nil
	if _, err := c.Verify(shards); err == nil {
		t.Fatal("Verify accepted missing shard")
	}
}

func TestEncodeInputValidation(t *testing.T) {
	c := mustCode(t, 9, 6)
	if _, err := c.Encode(make([][]byte, 5)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("wrong count err = %v", err)
	}
	data := randStripeData(rand.New(rand.NewSource(4)), 6, 32)
	data[3] = nil
	if _, err := c.Encode(data); err == nil {
		t.Fatal("nil block accepted")
	}
	data[3] = make([]byte, 31)
	if _, err := c.Encode(data); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged err = %v", err)
	}
	empty := [][]byte{{}, {}, {}, {}, {}, {}}
	if _, err := c.Encode(empty); !errors.Is(err, ErrEmptyShards) {
		t.Fatalf("empty err = %v", err)
	}
}

// TestAnyKOfNReconstruct is the MDS property test: for a small code,
// exhaustively erase every possible set of n−k shards and reconstruct.
func TestAnyKOfNReconstruct(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n, k = 8, 5
	c := mustCode(t, n, k)
	orig, err := c.Encode(randStripeData(r, k, 96))
	if err != nil {
		t.Fatal(err)
	}
	// Iterate all C(8,3) = 56 erasure patterns.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for d := b + 1; d < n; d++ {
				shards := cloneShards(orig)
				shards[a], shards[b], shards[d] = nil, nil, nil
				if err := c.Reconstruct(shards); err != nil {
					t.Fatalf("erase {%d,%d,%d}: %v", a, b, d, err)
				}
				for idx := range shards {
					if !bytes.Equal(shards[idx], orig[idx]) {
						t.Fatalf("erase {%d,%d,%d}: shard %d wrong", a, b, d, idx)
					}
				}
			}
		}
	}
}

func TestReconstructSampledLargeCode(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const n, k = 20, 12
	c := mustCode(t, n, k)
	orig, err := c.Encode(randStripeData(r, k, 64))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		shards := cloneShards(orig)
		for _, idx := range r.Perm(n)[:n-k] {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		for idx := range shards {
			if !bytes.Equal(shards[idx], orig[idx]) {
				t.Fatalf("trial %d: shard %d wrong", trial, idx)
			}
		}
	}
}

func TestReconstructTooFew(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := mustCode(t, 9, 6)
	shards, _ := c.Encode(randStripeData(r, 6, 32))
	for i := 0; i < 4; i++ {
		shards[i] = nil
	}
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFew) {
		t.Fatalf("err = %v, want ErrTooFew", err)
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	c := mustCode(t, 9, 6)
	shards, _ := c.Encode(randStripeData(r, 6, 32))
	before := cloneShards(shards)
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], before[i]) {
			t.Fatal("Reconstruct modified a complete stripe")
		}
	}
}

func TestReconstructDataLeavesParityNil(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c := mustCode(t, 9, 6)
	orig, _ := c.Encode(randStripeData(r, 6, 32))
	shards := cloneShards(orig)
	shards[1] = nil // data
	shards[8] = nil // parity
	if err := c.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], orig[1]) {
		t.Fatal("data block not recovered")
	}
	if shards[8] != nil {
		t.Fatal("ReconstructData filled a parity block")
	}
}

func TestDecodeBlockFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	c := mustCode(t, 9, 6)
	shards, _ := c.Encode(randStripeData(r, 6, 48))
	got, err := c.DecodeBlock(2, shards)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shards[2]) {
		t.Fatal("fast path returned wrong block")
	}
	got[0] ^= 1
	if got[0] == shards[2][0] {
		t.Fatal("DecodeBlock returned a view, want a copy")
	}
}

func TestDecodeBlockFromParityOnly(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n, k = 10, 4
	c := mustCode(t, n, k)
	orig, _ := c.Encode(randStripeData(r, k, 48))
	shards := cloneShards(orig)
	// Erase every data block: decode must go entirely through parity.
	for i := 0; i < k; i++ {
		shards[i] = nil
	}
	for i := 0; i < k; i++ {
		got, err := c.DecodeBlock(i, shards)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, orig[i]) {
			t.Fatalf("block %d decoded wrong", i)
		}
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	c := mustCode(t, 9, 6)
	shards, _ := c.Encode(randStripeData(r, 6, 48))
	if _, err := c.DecodeBlock(-1, shards); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := c.DecodeBlock(6, shards); err == nil {
		t.Fatal("parity index accepted")
	}
	for i := range shards {
		if i != 0 {
			shards[i] = nil
		}
	}
	shards[0] = nil
	if _, err := c.DecodeBlock(1, shards); !errors.Is(err, ErrEmptyShards) {
		t.Fatalf("err = %v", err)
	}
}

func TestRepairShardEveryPosition(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const n, k = 9, 6
	c := mustCode(t, n, k)
	orig, _ := c.Encode(randStripeData(r, k, 64))
	for j := 0; j < n; j++ {
		shards := cloneShards(orig)
		shards[j] = nil
		got, err := c.RepairShard(j, shards)
		if err != nil {
			t.Fatalf("repair %d: %v", j, err)
		}
		if !bytes.Equal(got, orig[j]) {
			t.Fatalf("repair %d: wrong content", j)
		}
	}
}

func TestRepairShardIgnoresStaleCopy(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	c := mustCode(t, 9, 6)
	orig, _ := c.Encode(randStripeData(r, 6, 64))
	shards := cloneShards(orig)
	// Corrupt the shard being repaired: RepairShard must mask it out.
	for i := range shards[7] {
		shards[7][i] ^= 0xff
	}
	got, err := c.RepairShard(7, shards)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig[7]) {
		t.Fatal("RepairShard used the stale shard")
	}
}

func TestRepairShardErrors(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	c := mustCode(t, 9, 6)
	shards, _ := c.Encode(randStripeData(r, 6, 64))
	if _, err := c.RepairShard(9, shards); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	for i := 0; i < 4; i++ {
		shards[i] = nil
	}
	if _, err := c.RepairShard(0, shards); !errors.Is(err, ErrTooFew) {
		t.Fatalf("err = %v, want ErrTooFew", err)
	}
}

// TestDeltaUpdateEquivalence is the core Algorithm 1 invariant: the
// delta path (b_j ^= α_{j,i}·(x−old)) must be byte-identical to
// re-encoding the whole stripe with the new data.
func TestDeltaUpdateEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(12)
		k := 1 + r.Intn(n)
		c := mustCode(t, n, k)
		size := 1 + r.Intn(200)
		data := randStripeData(r, k, size)
		shards, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		// Mutate one random data block.
		i := r.Intn(k)
		newBlock := make([]byte, size)
		r.Read(newBlock)
		// Path A: delta updates on each parity block.
		for j := k; j < n; j++ {
			c.UpdateParity(shards[j], j, i, data[i], newBlock)
		}
		// Path B: re-encode from scratch.
		data2 := make([][]byte, k)
		copy(data2, data)
		data2[i] = newBlock
		want, err := c.Encode(data2)
		if err != nil {
			t.Fatal(err)
		}
		for j := k; j < n; j++ {
			if !bytes.Equal(shards[j], want[j]) {
				t.Fatalf("(%d,%d) trial %d: parity %d differs after delta update", n, k, trial, j)
			}
		}
	}
}

// TestDeltaUpdatesCommute verifies the commutativity that lets
// Algorithm 1 apply updates of different data blocks to parity nodes
// in any order.
func TestDeltaUpdatesCommute(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	c := mustCode(t, 9, 6)
	const size = 64
	data := randStripeData(r, 6, size)
	shardsA, _ := c.Encode(data)
	shardsB := cloneShards(shardsA)
	new1, new2 := make([]byte, size), make([]byte, size)
	r.Read(new1)
	r.Read(new2)
	// Order 1: update block 1 then block 4.
	for j := 6; j < 9; j++ {
		c.UpdateParity(shardsA[j], j, 1, data[1], new1)
		c.UpdateParity(shardsA[j], j, 4, data[4], new2)
	}
	// Order 2: block 4 then block 1.
	for j := 6; j < 9; j++ {
		c.UpdateParity(shardsB[j], j, 4, data[4], new2)
		c.UpdateParity(shardsB[j], j, 1, data[1], new1)
	}
	for j := 6; j < 9; j++ {
		if !bytes.Equal(shardsA[j], shardsB[j]) {
			t.Fatalf("parity %d depends on update order", j)
		}
	}
}

func TestDataDelta(t *testing.T) {
	old := []byte{1, 2, 3}
	new_ := []byte{1, 0, 0xff}
	d := DataDelta(old, new_)
	if !bytes.Equal(d, []byte{0, 2, 0xfc}) {
		t.Fatalf("DataDelta = %v", d)
	}
}

func TestDataDeltaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DataDelta([]byte{1}, []byte{1, 2})
}

func TestParityAdjustmentDataRowPanics(t *testing.T) {
	c := mustCode(t, 9, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.ParityAdjustment(3, 0, []byte{1})
}

func TestApplyAdjustmentMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ApplyAdjustment([]byte{1, 2}, []byte{1})
}

func TestSplitJoinRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	c := mustCode(t, 9, 6)
	for _, size := range []int{0, 1, 5, 6, 7, 600, 601, 4096} {
		src := make([]byte, size)
		r.Read(src)
		blocks := c.Split(src)
		if len(blocks) != 6 {
			t.Fatalf("size %d: %d blocks", size, len(blocks))
		}
		per := len(blocks[0])
		for _, b := range blocks {
			if len(b) != per {
				t.Fatalf("size %d: ragged blocks", size)
			}
		}
		back, err := c.Join(blocks, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	c := mustCode(t, 9, 6)
	blocks := c.Split([]byte("hello world"))
	if _, err := c.Join(blocks[:5], 11); !errors.Is(err, ErrShardCount) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Join(blocks, 1000); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Join(blocks, -1); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v", err)
	}
	blocks[2] = nil
	if _, err := c.Join(blocks, 11); err == nil {
		t.Fatal("nil block accepted")
	}
}

func TestSplitEmpty(t *testing.T) {
	c := mustCode(t, 9, 6)
	blocks := c.Split(nil)
	for _, b := range blocks {
		if len(b) != 1 {
			t.Fatal("empty Split should yield 1-byte blocks")
		}
	}
	back, err := c.Join(blocks, 0)
	if err != nil || len(back) != 0 {
		t.Fatalf("Join = %v, %v", back, err)
	}
}

func TestEncodePaperStripe(t *testing.T) {
	// The paper's running example: a (9,6) MDS code needs
	// n−k+1 = 4 operations for a single-block update — 1 data write
	// plus 3 parity adjustments. Check the adjacency of our API.
	c := mustCode(t, 9, 6)
	if got := c.ParityCount() + 1; got != 4 {
		t.Fatalf("(9,6): update touches %d nodes, want 4", got)
	}
}

func BenchmarkEncode15_8_4K(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	c := mustCode(b, 15, 8)
	data := randStripeData(r, 8, 4096)
	b.SetBytes(8 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructTwoLost15_8_4K(b *testing.B) {
	r := rand.New(rand.NewSource(20))
	c := mustCode(b, 15, 8)
	orig, _ := c.Encode(randStripeData(r, 8, 4096))
	b.SetBytes(2 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := cloneShards(orig)
		shards[0], shards[9] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaUpdate15_8_4K(b *testing.B) {
	r := rand.New(rand.NewSource(21))
	c := mustCode(b, 15, 8)
	data := randStripeData(r, 8, 4096)
	shards, _ := c.Encode(data)
	newBlock := make([]byte, 4096)
	r.Read(newBlock)
	b.SetBytes(int64(c.ParityCount()) * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 8; j < 15; j++ {
			c.UpdateParity(shards[j], j, 3, data[3], newBlock)
		}
	}
}
