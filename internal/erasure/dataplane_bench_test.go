package erasure

import (
	"fmt"
	"math/rand"
	"testing"

	"trapquorum/internal/blockpool"
)

// Data-plane throughput benchmarks: Encode, Reconstruct, RepairShard
// and the delta-update pipeline across block sizes {1 KiB, 64 KiB,
// 1 MiB} and (n,k) shapes, with SetBytes so `go test -bench` reports
// MB/s and ReportAllocs pinning the ~0 allocs/op claim of the pooled
// steady state. tools/benchjson turns the output into
// BENCH_dataplane.json.

var (
	dpSizes  = []int{1 << 10, 64 << 10, 1 << 20}
	dpShapes = [][2]int{{15, 8}, {9, 6}, {20, 12}}
)

func dpName(shape [2]int, size int) string {
	unit := fmt.Sprintf("%dK", size>>10)
	if size >= 1<<20 {
		unit = fmt.Sprintf("%dM", size>>20)
	}
	return fmt.Sprintf("%d_%d/%s", shape[0], shape[1], unit)
}

func BenchmarkEncodeInto(b *testing.B) {
	for _, shape := range dpShapes {
		for _, size := range dpSizes {
			b.Run(dpName(shape, size), func(b *testing.B) {
				r := rand.New(rand.NewSource(60))
				c := mustCode(b, shape[0], shape[1])
				data := randStripeData(r, c.K(), size)
				parity := make([][]byte, c.ParityCount())
				for j := range parity {
					parity[j] = make([]byte, size)
				}
				b.SetBytes(int64(c.K() * size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.EncodeInto(parity, data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEncodeParallel measures the stripe-parallel encoder at the
// configured worker counts (wall-clock gains require >1 CPU; the
// benchmark also documents the parallel path's overhead on 1 CPU).
func BenchmarkEncodeParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			r := rand.New(rand.NewSource(61))
			c, err := New(15, 8, WithParallelism(workers))
			if err != nil {
				b.Fatal(err)
			}
			const size = 1 << 20
			data := randStripeData(r, 8, size)
			parity := make([][]byte, 7)
			for j := range parity {
				parity[j] = make([]byte, size)
			}
			b.SetBytes(8 * size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.EncodeInto(parity, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReconstructInto(b *testing.B) {
	for _, shape := range dpShapes {
		for _, size := range dpSizes {
			b.Run(dpName(shape, size), func(b *testing.B) {
				r := rand.New(rand.NewSource(62))
				c := mustCode(b, shape[0], shape[1])
				orig, err := c.Encode(randStripeData(r, c.K(), size))
				if err != nil {
					b.Fatal(err)
				}
				// Two lost shards: one data, one parity — the classic
				// double-failure repair.
				lostData, lostParity := 0, c.K()+1
				shards := make([][]byte, c.N())
				dst := make([][]byte, c.N())
				dst[lostData] = make([]byte, size)
				dst[lostParity] = make([]byte, size)
				b.SetBytes(int64(2 * size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(shards, orig)
					shards[lostData], shards[lostParity] = nil, nil
					if err := c.ReconstructInto(shards, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkRepairShardInto(b *testing.B) {
	for _, shape := range dpShapes {
		for _, size := range dpSizes {
			b.Run(dpName(shape, size), func(b *testing.B) {
				r := rand.New(rand.NewSource(63))
				c := mustCode(b, shape[0], shape[1])
				orig, err := c.Encode(randStripeData(r, c.K(), size))
				if err != nil {
					b.Fatal(err)
				}
				shards := cloneShards(orig)
				shards[c.K()] = nil // repair the first parity shard
				dst := make([]byte, size)
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.RepairShardInto(dst, c.K(), shards); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDeltaUpdate measures the Algorithm 1 update pipeline — the
// per-parity α_{j,i}·(x−old) accumulate — across all parity rows, the
// node-side cost of one block write.
func BenchmarkDeltaUpdate(b *testing.B) {
	for _, shape := range dpShapes {
		for _, size := range dpSizes {
			b.Run(dpName(shape, size), func(b *testing.B) {
				r := rand.New(rand.NewSource(64))
				c := mustCode(b, shape[0], shape[1])
				data := randStripeData(r, c.K(), size)
				shards, err := c.Encode(data)
				if err != nil {
					b.Fatal(err)
				}
				newBlock := make([]byte, size)
				r.Read(newBlock)
				b.SetBytes(int64(c.ParityCount() * size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := c.K(); j < c.N(); j++ {
						c.UpdateParity(shards[j], j, 3%c.K(), data[3%c.K()], newBlock)
					}
				}
			})
		}
	}
}

// BenchmarkVerify measures the scrubber's parity audit (word-wise
// banked re-derivation with in-place lane compare).
func BenchmarkVerify(b *testing.B) {
	for _, size := range dpSizes {
		b.Run(dpName([2]int{15, 8}, size), func(b *testing.B) {
			r := rand.New(rand.NewSource(65))
			c := mustCode(b, 15, 8)
			shards, err := c.Encode(randStripeData(r, 8, size))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := c.Verify(shards)
				if err != nil || !ok {
					b.Fatalf("Verify = %v, %v", ok, err)
				}
			}
		})
	}
}

// BenchmarkDeltaUpdatePooled is the write path's exact shape: pooled
// delta + pooled adjustment, DataDeltaInto + ParityAdjustmentInto +
// ApplyAdjustment, one parity row.
func BenchmarkDeltaUpdatePooled(b *testing.B) {
	for _, size := range dpSizes {
		b.Run(dpName([2]int{15, 8}, size), func(b *testing.B) {
			r := rand.New(rand.NewSource(66))
			c := mustCode(b, 15, 8)
			data := randStripeData(r, 8, size)
			shards, err := c.Encode(data)
			if err != nil {
				b.Fatal(err)
			}
			newBlock := make([]byte, size)
			r.Read(newBlock)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta := blockpool.GetBlock(size)
				DataDeltaInto(delta.B, data[3], newBlock)
				adj := blockpool.GetBlock(size)
				c.ParityAdjustmentInto(adj.B, 9, 3, delta.B)
				ApplyAdjustment(shards[9], adj.B)
				adj.Release()
				delta.Release()
			}
		})
	}
}
