package erasure

import (
	"math/rand"
	"testing"
)

// TestSum64KnownVectors pins the implementation to the published XXH64
// reference vectors (seed 0), so the on-disk and on-wire checksums stay
// stable across refactors.
func TestSum64KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"abc", 0x44bc2cf5ad770999},
	}
	for _, c := range cases {
		if got := Sum64([]byte(c.in)); got != c.want {
			t.Errorf("Sum64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// TestSum64BitSensitivity flips single bits across a spread of sizes —
// covering the tail-only, word-tail and 32-byte-lane code paths — and
// requires every flip to change the hash. This is the property the
// verified-read path actually relies on: any single corrupted byte in a
// shard is visible in its checksum.
func TestSum64BitSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 1024, 4096}
	for _, size := range sizes {
		buf := make([]byte, size)
		rng.Read(buf)
		base := Sum64(buf)
		for trial := 0; trial < 32; trial++ {
			pos := rng.Intn(size)
			bit := byte(1) << uint(rng.Intn(8))
			buf[pos] ^= bit
			if got := Sum64(buf); got == base {
				t.Fatalf("size %d: flipping bit %#x at %d left hash %#x unchanged", size, bit, pos, base)
			}
			buf[pos] ^= bit
		}
		if again := Sum64(buf); again != base {
			t.Fatalf("size %d: hash not deterministic: %#x then %#x", size, base, again)
		}
	}
}

// TestSum64LengthSensitivity checks a truncated buffer never collides
// with its original — truncation is one of the injected corruption
// modes.
func TestSum64LengthSensitivity(t *testing.T) {
	buf := make([]byte, 257)
	rand.New(rand.NewSource(11)).Read(buf)
	seen := make(map[uint64]int)
	for n := 0; n <= len(buf); n++ {
		h := Sum64(buf[:n])
		if prev, dup := seen[h]; dup {
			t.Fatalf("prefix lengths %d and %d collide on %#x", prev, n, h)
		}
		seen[h] = n
	}
}

func BenchmarkSum64(b *testing.B) {
	for _, size := range []int{4096, 65536} {
		buf := make([]byte, size)
		rand.New(rand.NewSource(3)).Read(buf)
		b.Run(byteSize(size), func(b *testing.B) {
			b.SetBytes(int64(size))
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += Sum64(buf)
			}
			_ = sink
		})
	}
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return "1MiB"
	case n == 65536:
		return "64KiB"
	case n == 4096:
		return "4KiB"
	default:
		return "n"
	}
}
