package erasure

import (
	"container/list"

	"trapquorum/internal/matrix"
)

// decodeEntry is one cached decode inverse: the k×k inverse of the
// generator rows selected by a survivor set, plus the survivor indices
// themselves so the fast path never rebuilds them. Entries are
// immutable once inserted; callers must not mutate inv or use.
type decodeEntry struct {
	key string
	inv *matrix.Matrix
	use []int
}

// decodeCache is a plain LRU over decodeEntry, keyed by the packed
// survivor-index string. It deliberately evicts the coldest failure
// pattern when full — the previous design stopped caching new patterns
// at the limit, which made long-lived clusters with churning failure
// sets regress to re-inverting their *current* pattern on every decode
// while the cache sat full of stale ones. Not safe for concurrent use;
// the Code serialises access behind cacheMu.
type decodeCache struct {
	limit   int
	order   *list.List // front = most recently used; values are *decodeEntry
	entries map[string]*list.Element
}

func newDecodeCache(limit int) *decodeCache {
	return &decodeCache{
		limit:   limit,
		order:   list.New(),
		entries: make(map[string]*list.Element, limit),
	}
}

// lookup fetches the entry for a packed key, refreshing its recency.
// The key is passed as a byte slice so hit-path lookups stay
// allocation-free (the map index expression below does not copy).
func (dc *decodeCache) lookup(key []byte) (*decodeEntry, bool) {
	el, ok := dc.entries[string(key)]
	if !ok {
		return nil, false
	}
	dc.order.MoveToFront(el)
	return el.Value.(*decodeEntry), true
}

// insert adds an entry, evicting the least recently used one when the
// cache is full. Inserting an existing key refreshes it.
func (dc *decodeCache) insert(e *decodeEntry) {
	if el, ok := dc.entries[e.key]; ok {
		el.Value = e
		dc.order.MoveToFront(el)
		return
	}
	if dc.order.Len() >= dc.limit {
		oldest := dc.order.Back()
		if oldest != nil {
			dc.order.Remove(oldest)
			delete(dc.entries, oldest.Value.(*decodeEntry).key)
		}
	}
	dc.entries[e.key] = dc.order.PushFront(e)
}

// len reports the number of cached entries.
func (dc *decodeCache) len() int { return dc.order.Len() }
