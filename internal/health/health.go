// Package health implements failure detection for a storage cluster:
// a Monitor probes every cluster node on a fixed interval and runs a
// per-node liveness state machine
//
//	Up → Suspect → Down → Repairing → Up
//
// whose transitions feed the background repair orchestrator
// (internal/repairsched). The detector is deliberately simple — a
// counting suspicion threshold over periodic probes, the classic
// heartbeat-style detector of practical erasure-coded stores — because
// the protocol itself already tolerates wrong guesses: a node marked
// Down that still answers RPCs merely gets repaired a little early,
// and a dead node not yet marked Down merely delays its repair. The
// monitor never gates foreground quorum traffic; it only decides when
// background reconvergence starts.
//
// States:
//
//   - Up: the node answers probes.
//   - Suspect: at least one probe failed; the node is still counted as
//     a full member (the quorum protocol keeps talking to it) while
//     consecutive failures accumulate.
//   - Down: Threshold consecutive probes failed. The orchestrator
//     drops any repair work targeting the node; reads decode around it
//     exactly as before — Down is an observation, not an exclusion.
//   - Repairing: a Down node answered a probe again (the process
//     restarted, the partition healed, the disk was replaced). The
//     orchestrator rebuilds every chunk the placement assigns to the
//     node; when the plan completes the node returns to Up.
//
// A node can also sit in two alive-but-wrong states: Corrupt (it
// answers probes while serving disavowed bytes — see ReportCorrupt)
// and Brownout (it answers probes slowly — degraded, not down; see
// Config.BrownoutLatency). Brownout distinguishes a congested link or
// dying disk from a dead node: no repair is planned, the node stays a
// full quorum member, and the state clears itself once latency
// recovers.
//
// The monitor is transport-agnostic: it probes through a ProbeFunc,
// which the public layer binds to the backend's cheapest liveness
// check (a TCP ping on the network plane, the fail-stop flag on the
// simulator).
package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is one position of the per-node liveness state machine.
type State uint8

// The liveness states, in the order the machine normally traverses
// them. A Suspect node whose next probe succeeds returns directly to
// Up; a Repairing node that stops answering again falls back to Down.
const (
	// Up: the node answers probes and needs no background work.
	Up State = iota
	// Suspect: recent probes failed but the suspicion threshold has
	// not been reached; no action is taken yet.
	Suspect
	// Down: the suspicion threshold was reached; the node is
	// considered failed until it answers a probe again.
	Down
	// Repairing: the node answers again after being Down and the
	// repair orchestrator is restoring its chunks.
	Repairing
	// Corrupt: the node is alive — it answers probes — but the read
	// or scrub path observed it serving bytes its peers' cross-checksum
	// records disavow. Probe success never clears Corrupt (a lying node
	// pings fine); the node returns to Up only after a repair plan
	// completes AND the node then stays free of corruption reports for
	// the CorruptQuiet dwell, so a persistently corrupt node stays
	// pinned here instead of flapping between plans.
	Corrupt
	// Brownout: the node answers probes but slowly — its smoothed
	// latency exceeds Config.BrownoutLatency. Degraded, not down: it
	// still counts as a full member and no repair is planned; the
	// signal is for operators (a link is congested, a disk is dying)
	// and for hedging-aware callers. Cleared with hysteresis once the
	// latency falls back below half the threshold; probe *failures*
	// move a Brownout node down the Suspect→Down path like an Up node.
	Brownout
)

// String renders the state for logs and operator output.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Repairing:
		return "repairing"
	case Corrupt:
		return "corrupt"
	case Brownout:
		return "brownout"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// ProbeFunc checks one node's liveness. A nil error means the node
// answered; any error counts as a failed probe. Implementations must
// honour ctx (each probe runs under the monitor's per-probe timeout)
// and must be safe for concurrent use — the monitor probes all nodes
// of a round in parallel.
type ProbeFunc func(ctx context.Context, node int) error

// Transition records one state-machine edge of one node.
type Transition struct {
	// Node is the cluster node that moved.
	Node int
	// From is the state the node left.
	From State
	// To is the state the node entered.
	To State
	// At is when the monitor applied the transition.
	At time.Time
}

// String renders "node 3: down -> repairing".
func (t Transition) String() string {
	return fmt.Sprintf("node %d: %s -> %s", t.Node, t.From, t.To)
}

// Config parameterises a Monitor. Zero fields take the defaults
// documented per field.
type Config struct {
	// Interval is the pause between probe rounds (default 500ms).
	Interval time.Duration
	// Timeout bounds each individual probe (default: Interval).
	Timeout time.Duration
	// Threshold is how many consecutive probes must fail before a
	// node is declared Down (default 3). 1 declares Down on the first
	// failure (the Suspect transition is still emitted).
	Threshold int
	// CorruptQuiet is how long a Corrupt node must go without a fresh
	// corruption report before a completed repair plan may clear the
	// pin (default 2×Interval). Without the dwell, a plan completing in
	// the gap between two reads would clear a node that is still lying
	// and Health() would flap up↔corrupt; with it, the pin only lifts
	// once the readers and scrubber have had a chance to disagree.
	CorruptQuiet time.Duration
	// BrownoutLatency, when positive, enables brownout detection: a
	// node whose smoothed latency exceeds it moves Up→Brownout, and
	// returns once the latency drops below half of it (hysteresis, so
	// a node sitting at the threshold doesn't flap).
	BrownoutLatency time.Duration
	// Latency, when non-nil, supplies the per-node smoothed latency
	// brownout detection consults (for example a transport's per-node
	// EWMA over real operations); ok=false means no samples yet. When
	// nil the monitor falls back to its own probe-duration EWMA. Called
	// with the monitor's lock held — implementations must not call back
	// into the monitor.
	Latency func(node int) (lat time.Duration, ok bool)
	// OnTransition, when non-nil, observes every transition in
	// application order, invoked from the monitor's single dispatcher
	// goroutine just before the transition is delivered on the
	// Transitions channel — so it never runs concurrently with itself
	// and may safely call back into the monitor. Keep it fast; it is
	// meant for logging and tests.
	OnTransition func(Transition)
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.Threshold < 1 {
		c.Threshold = 3
	}
	if c.CorruptQuiet <= 0 {
		c.CorruptQuiet = 2 * c.Interval
	}
	return c
}

// Counters are the monitor's cumulative event counts. All fields are
// monotone and safe to read while the monitor runs.
type Counters struct {
	// Probes counts every probe issued.
	Probes atomic.Int64
	// ProbeFailures counts probes that returned an error.
	ProbeFailures atomic.Int64
	// Suspicions counts Up→Suspect transitions.
	Suspicions atomic.Int64
	// DownEvents counts transitions into Down.
	DownEvents atomic.Int64
	// Recoveries counts Repairing→Up transitions (a node fully
	// healed).
	Recoveries atomic.Int64
	// CorruptReports counts every ReportCorrupt call — one per
	// corruption observation delivered by the read, repair or scrub
	// paths.
	CorruptReports atomic.Int64
	// CorruptEvents counts transitions into Corrupt (first pinning and
	// every re-arm after a repair plan raced fresh reports).
	CorruptEvents atomic.Int64
	// Brownouts counts transitions into Brownout.
	Brownouts atomic.Int64
}

// CountersSnapshot is a plain-value copy of Counters.
type CountersSnapshot struct {
	// Probes counts every probe issued.
	Probes int64
	// ProbeFailures counts probes that returned an error.
	ProbeFailures int64
	// Suspicions counts Up→Suspect transitions.
	Suspicions int64
	// DownEvents counts transitions into Down.
	DownEvents int64
	// Recoveries counts Repairing→Up transitions.
	Recoveries int64
	// CorruptReports counts corruption observations reported.
	CorruptReports int64
	// CorruptEvents counts transitions into Corrupt.
	CorruptEvents int64
	// Brownouts counts transitions into Brownout.
	Brownouts int64
}

// NodeStatus is the externally visible state of one node.
type NodeStatus struct {
	// Node is the cluster node index.
	Node int
	// State is the node's current liveness state.
	State State
	// ConsecutiveFailures is the current run of failed probes (reset
	// by any successful probe).
	ConsecutiveFailures int
	// LastProbe is when the node's latest probe settled (zero before
	// the first round).
	LastProbe time.Time
	// LastTransition is when the node last changed state (zero while
	// it has never left Up).
	LastTransition time.Time
	// CorruptReports is how many corruption observations have been
	// reported against this node over the monitor's lifetime.
	CorruptReports int64
	// Latency is the smoothed latency brownout detection last consulted
	// for this node (the external source when configured, the probe
	// EWMA otherwise); 0 before the first sample.
	Latency time.Duration
}

type nodeState struct {
	state          State
	failures       int
	lastProbe      time.Time
	lastTransition time.Time
	// corruptSeq counts corruption reports against the node;
	// corruptPlanned is the value captured when the current Corrupt
	// repair plan was armed. RepairDone clears Corrupt only when the
	// two still agree — reports arriving mid-plan re-arm instead.
	corruptSeq     int64
	corruptPlanned int64
	// lastCorrupt is when the latest corruption report arrived;
	// pendingClear marks a Corrupt node whose plan completed quietly
	// but within CorruptQuiet of the last report — the probe loop
	// clears it to Up once the dwell elapses report-free, and a fresh
	// report instead re-plans it.
	lastCorrupt  time.Time
	pendingClear bool
	// probeEWMA smooths successful probe durations — the fallback
	// latency source for brownout detection; lastLatency is whatever
	// source the detector last consulted (for NodeStatus).
	probeEWMA   time.Duration
	lastLatency time.Duration
}

// Monitor probes a fixed-size cluster and maintains the per-node
// state machines. Construct with New, then Start; Close stops the
// probe loop and closes the Transitions channel.
type Monitor struct {
	probe ProbeFunc
	cfg   Config

	mu    sync.Mutex
	nodes []nodeState

	// Transitions are staged in an unbounded queue while m.mu is
	// still held — so queue order always equals application order,
	// even when RepairDone races a probe round — and delivered by a
	// dedicated dispatcher goroutine, which also invokes the
	// OnTransition callback (serialised, and free to call back into
	// the monitor). Staging never blocks: RepairDone is called from
	// the orchestrator's consumer goroutine — the channel's own
	// drainer — and a blocking send there would deadlock the whole
	// subsystem.
	qmu         sync.Mutex
	qcond       *sync.Cond
	pending     []Transition
	qclosed     bool
	transitions chan Transition

	counters Counters

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	started   atomic.Bool
}

// New builds a monitor over nodes 0..n-1 probing through probe. The
// monitor is idle until Start.
func New(n int, probe ProbeFunc, cfg Config) (*Monitor, error) {
	if n < 1 {
		return nil, fmt.Errorf("health: need at least one node, got %d", n)
	}
	if probe == nil {
		return nil, errors.New("health: nil ProbeFunc")
	}
	m := &Monitor{
		probe:       probe,
		cfg:         cfg.withDefaults(),
		nodes:       make([]nodeState, n),
		transitions: make(chan Transition, 16),
		done:        make(chan struct{}),
	}
	m.qcond = sync.NewCond(&m.qmu)
	return m, nil
}

// Start launches the probe loop and the transition dispatcher. It
// must be called at most once.
func (m *Monitor) Start() {
	if m.started.Swap(true) {
		panic("health: Monitor started twice")
	}
	m.wg.Add(2)
	go m.run()
	go m.dispatch()
}

// Close stops the probe loop and the dispatcher, waits for in-flight
// probes to settle and closes the Transitions channel. Safe to call
// more than once.
func (m *Monitor) Close() {
	m.closeOnce.Do(func() {
		close(m.done)
		m.qmu.Lock()
		m.qclosed = true
		m.qmu.Unlock()
		m.qcond.Broadcast()
		if m.started.Load() {
			m.wg.Wait()
		}
		close(m.transitions)
	})
}

// Transitions is the stream of state-machine edges, in application
// order. The channel is closed by Close. Exactly one consumer should
// drain it (the repair orchestrator); use Config.OnTransition for
// additional observers.
func (m *Monitor) Transitions() <-chan Transition { return m.transitions }

// Snapshot returns the current status of every node.
func (m *Monitor) Snapshot() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, len(m.nodes))
	for i, n := range m.nodes {
		out[i] = NodeStatus{
			Node:                i,
			State:               n.state,
			ConsecutiveFailures: n.failures,
			LastProbe:           n.lastProbe,
			LastTransition:      n.lastTransition,
			CorruptReports:      n.corruptSeq,
			Latency:             n.lastLatency,
		}
	}
	return out
}

// NodeState returns one node's current state. It panics on an
// out-of-range index.
func (m *Monitor) NodeState(node int) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nodes[node].state
}

// NodeCount returns the number of monitored nodes.
func (m *Monitor) NodeCount() int { return len(m.nodes) }

// Counters returns a snapshot of the cumulative event counts.
func (m *Monitor) Counters() CountersSnapshot {
	return CountersSnapshot{
		Probes:         m.counters.Probes.Load(),
		ProbeFailures:  m.counters.ProbeFailures.Load(),
		Suspicions:     m.counters.Suspicions.Load(),
		DownEvents:     m.counters.DownEvents.Load(),
		Recoveries:     m.counters.Recoveries.Load(),
		CorruptReports: m.counters.CorruptReports.Load(),
		CorruptEvents:  m.counters.CorruptEvents.Load(),
		Brownouts:      m.counters.Brownouts.Load(),
	}
}

// ReportCorrupt records one corruption observation against a node:
// the read, repair or scrub path caught it serving bytes that
// disagree with the cross-checksum record majority. An Up or Suspect
// node transitions to Corrupt (triggering a repair plan); a node
// already Corrupt, Down or Repairing only accumulates the report —
// the pending plan's completion consults the count. Out-of-range
// nodes are ignored so callers can report unconditionally. Safe for
// concurrent use from any goroutine.
func (m *Monitor) ReportCorrupt(node int) {
	if node < 0 || node >= len(m.nodes) {
		return
	}
	m.counters.CorruptReports.Add(1)
	m.mu.Lock()
	st := &m.nodes[node]
	st.corruptSeq++
	st.lastCorrupt = time.Now()
	switch {
	case st.state == Up || st.state == Suspect || st.state == Brownout:
		st.corruptPlanned = st.corruptSeq
		m.counters.CorruptEvents.Add(1)
		m.stage(*m.applyLocked(node, Corrupt))
	case st.state == Corrupt && st.pendingClear:
		// The previous plan already finished; this report is fresh rot
		// with no plan in flight, so re-arm and re-plan.
		st.pendingClear = false
		st.corruptPlanned = st.corruptSeq
		m.counters.CorruptEvents.Add(1)
		m.stage(*m.applyLocked(node, Corrupt))
	}
	m.mu.Unlock()
}

// RepairDone reports the outcome of the repair plan for a Repairing
// or Corrupt node. ok moves the node to Up; !ok leaves it where it is
// (the orchestrator retries, and a node that stopped answering falls
// back to Down through the probe loop). A Corrupt node returns to Up
// only when no corruption report arrived while the plan ran —
// otherwise the plan repaired a moving target, so the node stays
// pinned Corrupt and a fresh Corrupt edge is staged to re-plan it.
// Called by the orchestrator.
func (m *Monitor) RepairDone(node int, ok bool) {
	if !ok {
		return
	}
	m.mu.Lock()
	st := &m.nodes[node]
	switch st.state {
	case Repairing:
		m.stage(*m.applyLocked(node, Up))
		m.counters.Recoveries.Add(1)
	case Corrupt:
		switch {
		case st.corruptSeq != st.corruptPlanned:
			st.corruptPlanned = st.corruptSeq
			m.counters.CorruptEvents.Add(1)
			m.stage(*m.applyLocked(node, Corrupt))
		case time.Since(st.lastCorrupt) >= m.cfg.CorruptQuiet:
			m.stage(*m.applyLocked(node, Up))
			m.counters.Recoveries.Add(1)
		default:
			// Quiet plan, but too close to the last report to be sure
			// the node reformed: hold the pin without re-planning and
			// let the probe loop clear it once the dwell passes clean.
			st.pendingClear = true
		}
	}
	m.mu.Unlock()
}

// applyLocked moves node to state `to`, records the timestamp and
// returns the transition to emit. Caller holds m.mu.
func (m *Monitor) applyLocked(node int, to State) *Transition {
	n := &m.nodes[node]
	tr := Transition{Node: node, From: n.state, To: to, At: time.Now()}
	n.state = to
	n.lastTransition = tr.At
	n.pendingClear = false
	return &tr
}

// stage queues one transition for the dispatcher. Callers hold m.mu,
// which is what pins queue order to state-application order; the
// nested qmu acquisition is brief and never blocks (the queue is
// unbounded, its depth bounded in practice by 2n transitions per
// probe round), so staging is safe from any goroutine — including
// the transition consumer itself via RepairDone.
func (m *Monitor) stage(tr Transition) {
	m.qmu.Lock()
	if !m.qclosed {
		m.pending = append(m.pending, tr)
	}
	m.qmu.Unlock()
	m.qcond.Signal()
}

// dispatch delivers staged transitions in application order: the
// OnTransition callback first (always from this one goroutine, so
// the callback needs no locking of its own and may call back into
// the monitor), then the channel. Delivery is abandoned when the
// monitor closes.
func (m *Monitor) dispatch() {
	defer m.wg.Done()
	for {
		m.qmu.Lock()
		for len(m.pending) == 0 && !m.qclosed {
			m.qcond.Wait()
		}
		if len(m.pending) == 0 {
			m.qmu.Unlock()
			return
		}
		tr := m.pending[0]
		m.pending = m.pending[1:]
		m.qmu.Unlock()
		if m.cfg.OnTransition != nil {
			m.cfg.OnTransition(tr)
		}
		select {
		case m.transitions <- tr:
		case <-m.done:
			return
		}
	}
}

// run is the probe loop: one round of parallel probes every Interval.
func (m *Monitor) run() {
	defer m.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-m.done
		cancel()
	}()
	timer := time.NewTimer(m.cfg.Interval)
	defer timer.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-timer.C:
		}
		m.probeRound(ctx)
		timer.Reset(m.cfg.Interval)
	}
}

// probeRound probes every node in parallel and applies the results.
func (m *Monitor) probeRound(ctx context.Context) {
	n := len(m.nodes)
	errs := make([]error, n)
	durs := make([]time.Duration, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.cfg.Timeout)
			defer cancel()
			start := time.Now()
			errs[i] = m.probe(pctx, i)
			durs[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	select {
	case <-m.done:
		// The probes were cancelled by shutdown; their errors say
		// nothing about the nodes.
		return
	default:
	}
	m.counters.Probes.Add(int64(n))
	now := time.Now()
	var out []Transition
	m.mu.Lock()
	for i := 0; i < n; i++ {
		out = m.applyProbeLocked(i, errs[i], durs[i], now, out)
	}
	// Stage before releasing m.mu so a racing RepairDone cannot
	// interleave its transition out of application order.
	for _, tr := range out {
		m.stage(tr)
	}
	m.mu.Unlock()
}

// probeEWMAAlpha smooths successful probe durations for the fallback
// brownout latency source.
const probeEWMAAlpha = 0.3

// applyProbeLocked advances one node's state machine with one probe
// result, appending any transitions. Caller holds m.mu.
func (m *Monitor) applyProbeLocked(node int, err error, dur time.Duration, now time.Time, out []Transition) []Transition {
	st := &m.nodes[node]
	st.lastProbe = now
	if err == nil {
		st.failures = 0
		// Fold the probe's duration into the fallback latency source,
		// then consult whichever source is configured.
		if st.probeEWMA == 0 {
			st.probeEWMA = dur
		} else {
			st.probeEWMA = time.Duration(float64(st.probeEWMA)*(1-probeEWMAAlpha) + float64(dur)*probeEWMAAlpha)
		}
		lat, haveLat := st.probeEWMA, st.probeEWMA > 0
		if m.cfg.Latency != nil {
			lat, haveLat = m.cfg.Latency(node)
		}
		st.lastLatency = lat
		switch st.state {
		case Up:
			// Degraded-but-alive: slow answers are a brownout, not a
			// failure — the node stays a full member and no repair is
			// planned.
			if m.cfg.BrownoutLatency > 0 && haveLat && lat > m.cfg.BrownoutLatency {
				m.counters.Brownouts.Add(1)
				out = append(out, *m.applyLocked(node, Brownout))
			}
		case Brownout:
			// Hysteresis: clear only once latency falls well below the
			// threshold, so a node sitting at the line doesn't flap.
			if m.cfg.BrownoutLatency <= 0 || (haveLat && lat <= m.cfg.BrownoutLatency/2) {
				out = append(out, *m.applyLocked(node, Up))
			}
		case Suspect:
			// A false alarm: the node answered before the threshold.
			out = append(out, *m.applyLocked(node, Up))
		case Down:
			// The node is back (restart, healed partition, replaced
			// disk): hand it to the orchestrator for reconvergence.
			out = append(out, *m.applyLocked(node, Repairing))
		case Corrupt:
			// A corrupt node answers probes just fine — liveness says
			// nothing about the bytes it serves. The pin clears only
			// after a repair plan completed AND the node then stayed
			// report-free for the CorruptQuiet dwell.
			if st.pendingClear && st.corruptSeq == st.corruptPlanned &&
				now.Sub(st.lastCorrupt) >= m.cfg.CorruptQuiet {
				out = append(out, *m.applyLocked(node, Up))
				m.counters.Recoveries.Add(1)
			}
		}
		return out
	}
	m.counters.ProbeFailures.Add(1)
	st.failures++
	switch st.state {
	case Up, Brownout:
		// A Brownout node that stops answering altogether takes the
		// same road down as an Up node.
		m.counters.Suspicions.Add(1)
		out = append(out, *m.applyLocked(node, Suspect))
		if st.failures >= m.cfg.Threshold {
			m.counters.DownEvents.Add(1)
			out = append(out, *m.applyLocked(node, Down))
		}
	case Suspect:
		if st.failures >= m.cfg.Threshold {
			m.counters.DownEvents.Add(1)
			out = append(out, *m.applyLocked(node, Down))
		}
	case Repairing, Corrupt:
		// The node died (again) mid-repair: fall straight back to Down
		// once the threshold confirms it, so the orchestrator drops
		// the now-pointless plan. A Corrupt node going Down loses its
		// pin — if it comes back still corrupt, the verified read path
		// re-reports it within a few requests.
		if st.failures >= m.cfg.Threshold {
			m.counters.DownEvents.Add(1)
			out = append(out, *m.applyLocked(node, Down))
		}
	}
	return out
}
