package health

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var errProbe = errors.New("probe failed")

// fakeFleet is a concurrency-safe up/down switchboard for probes.
type fakeFleet struct {
	mu   sync.Mutex
	down map[int]bool
}

func newFakeFleet() *fakeFleet { return &fakeFleet{down: make(map[int]bool)} }

func (f *fakeFleet) set(node int, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[node] = down
}

func (f *fakeFleet) probe(_ context.Context, node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[node] {
		return errProbe
	}
	return nil
}

// transitionLog collects transitions via the synchronous callback.
type transitionLog struct {
	mu  sync.Mutex
	trs []Transition
}

func (l *transitionLog) add(tr Transition) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trs = append(l.trs, tr)
}

func (l *transitionLog) snapshot() []Transition {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Transition(nil), l.trs...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTestMonitor(t *testing.T, n int, fleet *fakeFleet, log *transitionLog, threshold int) *Monitor {
	t.Helper()
	cfg := Config{Interval: 2 * time.Millisecond, Threshold: threshold}
	if log != nil {
		cfg.OnTransition = log.add
	}
	m, err := New(n, fleet.probe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	// Drain the channel so blocking emits never stall the loop in
	// tests that only watch the callback log.
	go func() {
		for range m.Transitions() {
		}
	}()
	m.Start()
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, func(context.Context, int) error { return nil }, Config{}); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := New(3, nil, Config{}); err == nil {
		t.Fatal("want error for nil probe")
	}
}

func TestStateMachineDownAndBack(t *testing.T) {
	fleet := newFakeFleet()
	log := &transitionLog{}
	m := newTestMonitor(t, 3, fleet, log, 3)

	waitFor(t, "first probe round", func() bool {
		return m.Counters().Probes >= 3
	})
	for _, st := range m.Snapshot() {
		if st.State != Up {
			t.Fatalf("node %d starts %v, want up", st.Node, st.State)
		}
	}

	fleet.set(1, true)
	waitFor(t, "node 1 down", func() bool { return m.NodeState(1) == Down })

	// The path there must have visited Suspect first (the observer is
	// dispatched asynchronously: wait for it to catch up).
	node1Path := func() []State {
		var saw []State
		for _, tr := range log.snapshot() {
			if tr.Node == 1 {
				saw = append(saw, tr.To)
			}
		}
		return saw
	}
	waitFor(t, "down transition observed", func() bool {
		saw := node1Path()
		return len(saw) > 0 && saw[len(saw)-1] == Down
	})
	saw := node1Path()
	if len(saw) < 2 || saw[0] != Suspect || saw[len(saw)-1] != Down {
		t.Fatalf("node 1 transitions %v, want suspect then down", saw)
	}
	if m.NodeState(0) != Up || m.NodeState(2) != Up {
		t.Fatal("unrelated nodes must stay up")
	}

	// Node answers again: down -> repairing, and it stays there until
	// the orchestrator reports the repair done.
	fleet.set(1, false)
	waitFor(t, "node 1 repairing", func() bool { return m.NodeState(1) == Repairing })
	time.Sleep(10 * time.Millisecond)
	if got := m.NodeState(1); got != Repairing {
		t.Fatalf("node 1 left repairing without RepairDone: %v", got)
	}

	m.RepairDone(1, false)
	if got := m.NodeState(1); got != Repairing {
		t.Fatalf("failed RepairDone moved state to %v", got)
	}
	m.RepairDone(1, true)
	if got := m.NodeState(1); got != Up {
		t.Fatalf("node 1 after RepairDone: %v, want up", got)
	}
	if c := m.Counters(); c.Recoveries != 1 || c.DownEvents != 1 || c.Suspicions != 1 {
		t.Fatalf("counters %+v, want 1 suspicion, 1 down, 1 recovery", c)
	}
}

func TestSuspectRecoversWithoutDown(t *testing.T) {
	fleet := newFakeFleet()
	log := &transitionLog{}
	m := newTestMonitor(t, 1, fleet, log, 50) // high threshold: never Down

	fleet.set(0, true)
	waitFor(t, "node 0 suspect", func() bool { return m.NodeState(0) == Suspect })
	fleet.set(0, false)
	waitFor(t, "node 0 recovered", func() bool { return m.NodeState(0) == Up })

	for _, tr := range log.snapshot() {
		if tr.To == Down || tr.To == Repairing {
			t.Fatalf("unexpected transition %v", tr)
		}
	}
	if c := m.Counters(); c.DownEvents != 0 {
		t.Fatalf("DownEvents = %d, want 0", c.DownEvents)
	}
}

func TestThresholdOneGoesStraightThroughSuspect(t *testing.T) {
	fleet := newFakeFleet()
	log := &transitionLog{}
	m := newTestMonitor(t, 1, fleet, log, 1)

	fleet.set(0, true)
	waitFor(t, "node 0 down", func() bool { return m.NodeState(0) == Down })
	waitFor(t, "down observed", func() bool { return len(log.snapshot()) >= 2 })
	var saw []State
	for _, tr := range log.snapshot() {
		saw = append(saw, tr.To)
	}
	if saw[0] != Suspect || saw[1] != Down {
		t.Fatalf("transitions %v, want suspect immediately followed by down", saw)
	}
}

func TestRepairingNodeFallsBackToDown(t *testing.T) {
	fleet := newFakeFleet()
	m := newTestMonitor(t, 1, fleet, nil, 2)

	fleet.set(0, true)
	waitFor(t, "down", func() bool { return m.NodeState(0) == Down })
	fleet.set(0, false)
	waitFor(t, "repairing", func() bool { return m.NodeState(0) == Repairing })
	fleet.set(0, true)
	waitFor(t, "down again", func() bool { return m.NodeState(0) == Down })
	if c := m.Counters(); c.DownEvents != 2 {
		t.Fatalf("DownEvents = %d, want 2", c.DownEvents)
	}
}

func TestCountersMonotoneUnderConcurrentReads(t *testing.T) {
	fleet := newFakeFleet()
	m := newTestMonitor(t, 4, fleet, nil, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last CountersSnapshot
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := m.Counters()
				if c.Probes < last.Probes || c.ProbeFailures < last.ProbeFailures ||
					c.Suspicions < last.Suspicions || c.DownEvents < last.DownEvents ||
					c.Recoveries < last.Recoveries {
					t.Error("counters regressed")
					return
				}
				last = c
				m.Snapshot()
			}
		}()
	}
	// Flap nodes while readers sample.
	for i := 0; i < 20; i++ {
		fleet.set(i%4, i%3 == 0)
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestEmitNeverBlocksWithoutConsumer pins the non-blocking emission
// contract: with nobody draining Transitions, the probe loop (and
// RepairDone, which the orchestrator calls from the consumer
// goroutine itself) must keep running far past the channel's buffer.
func TestEmitNeverBlocksWithoutConsumer(t *testing.T) {
	fleet := newFakeFleet()
	m, err := New(1, fleet.probe, Config{Interval: time.Millisecond, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.Start() // note: no drain goroutine

	// Flap the node: every round emits transitions into the undrained
	// channel. Far more transitions than any buffer could hold.
	for i := 0; i < 200; i++ {
		fleet.set(0, i%2 == 0)
		time.Sleep(time.Millisecond)
		if i == 100 {
			m.RepairDone(0, true) // must not block either
		}
	}
	before := m.Counters().Probes
	time.Sleep(20 * time.Millisecond)
	if after := m.Counters().Probes; after <= before {
		t.Fatalf("probe loop stalled with an undrained transition channel (%d -> %d probes)", before, after)
	}
}

func TestCloseIsIdempotentAndClosesTransitions(t *testing.T) {
	fleet := newFakeFleet()
	m, err := New(2, fleet.probe, Config{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Close()
	m.Close()
	if _, ok := <-m.Transitions(); ok {
		// Draining any buffered transitions is fine; the channel must
		// eventually report closed.
		for range m.Transitions() {
		}
	}
}

// TestReportCorruptPinsNode: a corruption observation pins an Up node
// to Corrupt, and successful probes never clear the pin — a lying node
// pings fine.
func TestReportCorruptPinsNode(t *testing.T) {
	fleet := newFakeFleet()
	log := &transitionLog{}
	m := newTestMonitor(t, 2, fleet, log, 3)
	waitFor(t, "first probes", func() bool { return m.Counters().Probes >= 2 })

	m.ReportCorrupt(0)
	if got := m.NodeState(0); got != Corrupt {
		t.Fatalf("state after ReportCorrupt: %v, want corrupt", got)
	}
	// Probes keep succeeding; the pin must hold.
	before := m.Counters().Probes
	waitFor(t, "more probe rounds", func() bool { return m.Counters().Probes >= before+6 })
	if got := m.NodeState(0); got != Corrupt {
		t.Fatalf("probe success cleared the corruption pin: %v", got)
	}
	if m.NodeState(1) != Up {
		t.Fatal("unrelated node left Up")
	}
	c := m.Counters()
	if c.CorruptReports != 1 || c.CorruptEvents != 1 {
		t.Fatalf("counters %+v, want 1 corrupt report and 1 corrupt event", c)
	}
	waitFor(t, "corrupt transition observed", func() bool {
		for _, tr := range log.snapshot() {
			if tr.Node == 0 && tr.To == Corrupt {
				return true
			}
		}
		return false
	})
	for _, st := range m.Snapshot() {
		if st.Node == 0 && st.CorruptReports != 1 {
			t.Fatalf("snapshot %+v, want 1 corrupt report on node 0", st)
		}
	}
}

// TestCorruptClearsOnQuietRepair: RepairDone(ok) releases the pin only
// after no corruption report has arrived for the CorruptQuiet dwell —
// a plan completing in the gap between two reads must not flap a
// still-lying node through Up. A transient rot victim heals to Up once
// the dwell passes clean; fresh reports re-plan instead.
func TestCorruptClearsOnQuietRepair(t *testing.T) {
	fleet := newFakeFleet()
	m := newTestMonitor(t, 1, fleet, nil, 3) // dwell = 2×2ms interval

	// Honest bit-rot: one report, one plan. The plan completes within
	// the dwell of the report, so the clear is deferred — the node
	// stays pinned until the probe loop sees a report-free dwell.
	m.ReportCorrupt(0)
	if m.NodeState(0) != Corrupt {
		t.Fatal("not pinned")
	}
	m.RepairDone(0, true)
	if got := m.NodeState(0); got != Corrupt {
		t.Fatalf("repair inside the dwell cleared the pin: %v, want corrupt", got)
	}
	waitFor(t, "dwell elapsed clean, pin released", func() bool { return m.NodeState(0) == Up })
	if c := m.Counters(); c.Recoveries != 1 {
		t.Fatalf("counters %+v, want 1 recovery", c)
	}

	// A report landing after the plan finished (deferred-clear window)
	// re-plans: the node must stay Corrupt through a full dwell because
	// a plan is outstanding again.
	m.ReportCorrupt(0) // pin again (from Up)
	m.RepairDone(0, true)
	m.ReportCorrupt(0) // fresh rot while waiting out the dwell
	time.Sleep(12 * time.Millisecond)
	if got := m.NodeState(0); got != Corrupt {
		t.Fatalf("re-reported node cleared without a completed plan: %v", got)
	}
	m.RepairDone(0, true)
	waitFor(t, "re-planned node released after clean dwell", func() bool { return m.NodeState(0) == Up })

	// Persistent liar: a fresh report lands while the plan runs, so the
	// completed repair re-arms instead of clearing.
	m.ReportCorrupt(0)
	m.ReportCorrupt(0) // observation during the "plan"
	m.RepairDone(0, true)
	if got := m.NodeState(0); got != Corrupt {
		t.Fatalf("repair cleared a mid-plan-reported node: %v, want corrupt", got)
	}
	m.RepairDone(0, true)
	waitFor(t, "liar reformed, released after clean dwell", func() bool { return m.NodeState(0) == Up })
	if c := m.Counters(); c.CorruptReports != 5 || c.CorruptEvents != 5 || c.Recoveries != 3 {
		t.Fatalf("counters %+v, want 5 reports / 5 events / 3 recoveries", c)
	}
}

// TestCorruptNodeFallsToDown: probe failures outrank the corruption
// pin — a corrupt node that stops answering is Down (and loses the
// pin; corruption is re-reported if it returns still lying).
func TestCorruptNodeFallsToDown(t *testing.T) {
	fleet := newFakeFleet()
	m := newTestMonitor(t, 1, fleet, nil, 2)
	waitFor(t, "first probe", func() bool { return m.Counters().Probes >= 1 })

	m.ReportCorrupt(0)
	fleet.set(0, true)
	waitFor(t, "corrupt node down", func() bool { return m.NodeState(0) == Down })
	fleet.set(0, false)
	waitFor(t, "repairing on return", func() bool { return m.NodeState(0) == Repairing })
	m.RepairDone(0, true)
	if got := m.NodeState(0); got != Up {
		t.Fatalf("state %v, want up (the down/up cycle cleared the pin)", got)
	}
}

// TestReportCorruptIgnoredWhileDownOrOutOfRange: reports against Down
// nodes count but do not flip state (the node serves nothing), and
// out-of-range reports are no-ops.
func TestReportCorruptIgnoredWhileDownOrOutOfRange(t *testing.T) {
	fleet := newFakeFleet()
	m := newTestMonitor(t, 1, fleet, nil, 1)
	fleet.set(0, true)
	waitFor(t, "down", func() bool { return m.NodeState(0) == Down })

	m.ReportCorrupt(0)
	if got := m.NodeState(0); got != Down {
		t.Fatalf("report flipped a down node to %v", got)
	}
	c := m.Counters()
	if c.CorruptReports != 1 || c.CorruptEvents != 0 {
		t.Fatalf("counters %+v, want the report counted but no event", c)
	}
	m.ReportCorrupt(-1)
	m.ReportCorrupt(99)
	if got := m.Counters().CorruptReports; got != 1 {
		t.Fatalf("out-of-range reports counted: %d", got)
	}
}

// latSource is a concurrency-safe fake external latency source.
type latSource struct {
	mu  sync.Mutex
	lat time.Duration
}

func (s *latSource) set(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lat = d
}

func (s *latSource) get(int) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lat, s.lat > 0
}

// newBrownoutMonitor builds a monitor with brownout detection fed by
// an external latency source.
func newBrownoutMonitor(t *testing.T, fleet *fakeFleet, log *transitionLog, src *latSource) *Monitor {
	t.Helper()
	cfg := Config{
		Interval:        2 * time.Millisecond,
		Threshold:       3,
		BrownoutLatency: 50 * time.Millisecond,
		Latency:         src.get,
	}
	if log != nil {
		cfg.OnTransition = log.add
	}
	m, err := New(3, fleet.probe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	go func() {
		for range m.Transitions() {
		}
	}()
	m.Start()
	return m
}

func TestBrownoutDetectsAndClearsWithHysteresis(t *testing.T) {
	fleet := newFakeFleet()
	src := &latSource{}
	src.set(time.Millisecond)
	m := newBrownoutMonitor(t, fleet, nil, src)

	waitFor(t, "first round", func() bool { return m.Counters().Probes >= 3 })
	if st := m.NodeState(0); st != Up {
		t.Fatalf("node 0 = %v, want up", st)
	}

	// Latency climbs over the threshold: brownout, not down.
	src.set(200 * time.Millisecond)
	waitFor(t, "brownout", func() bool { return m.NodeState(0) == Brownout })
	if c := m.Counters(); c.Brownouts < 1 || c.DownEvents != 0 {
		t.Fatalf("counters = %+v, want brownouts without down events", c)
	}

	// Back under the threshold but above half of it: hysteresis holds
	// the brownout.
	src.set(40 * time.Millisecond)
	probes := m.Counters().Probes
	waitFor(t, "a few more rounds", func() bool { return m.Counters().Probes >= probes+9 })
	if st := m.NodeState(0); st != Brownout {
		t.Fatalf("node 0 = %v, want brownout held by hysteresis", st)
	}

	// Well below half: clears to Up.
	src.set(10 * time.Millisecond)
	waitFor(t, "brownout clears", func() bool { return m.NodeState(0) == Up })
}

func TestBrownoutNodeFallsToDownOnFailures(t *testing.T) {
	fleet := newFakeFleet()
	log := &transitionLog{}
	src := &latSource{}
	src.set(200 * time.Millisecond)
	m := newBrownoutMonitor(t, fleet, log, src)

	waitFor(t, "brownout", func() bool { return m.NodeState(1) == Brownout })

	// The browned-out node stops answering entirely: same
	// Suspect→Down road as an Up node.
	fleet.set(1, true)
	waitFor(t, "down", func() bool { return m.NodeState(1) == Down })
	var sawSuspect bool
	for _, tr := range log.snapshot() {
		if tr.Node == 1 && tr.From == Brownout && tr.To == Suspect {
			sawSuspect = true
		}
	}
	if !sawSuspect {
		t.Fatalf("transitions %v missing brownout->suspect", log.snapshot())
	}

	// And when it answers again it goes through Repairing, with its
	// brownout history forgotten.
	src.set(time.Millisecond)
	fleet.set(1, false)
	waitFor(t, "repairing", func() bool { return m.NodeState(1) == Repairing })
}

func TestProbeEWMAFallbackDrivesBrownout(t *testing.T) {
	// Without an external latency source the monitor's own probe
	// durations feed the detector.
	slow := make(chan struct{})
	probe := func(ctx context.Context, node int) error {
		select {
		case <-slow:
			// Closed: probes answer instantly.
			return nil
		default:
		}
		if node == 2 {
			select {
			case <-time.After(30 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	cfg := Config{
		Interval:        2 * time.Millisecond,
		Timeout:         time.Second,
		Threshold:       3,
		BrownoutLatency: 15 * time.Millisecond,
	}
	m, err := New(3, probe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	go func() {
		for range m.Transitions() {
		}
	}()
	m.Start()

	waitFor(t, "slow node browns out", func() bool { return m.NodeState(2) == Brownout })
	if st := m.NodeState(0); st != Up {
		t.Fatalf("fast node 0 = %v, want up", st)
	}
	snap := m.Snapshot()
	if snap[2].Latency < 15*time.Millisecond {
		t.Fatalf("node 2 latency = %v, want >= threshold", snap[2].Latency)
	}
}
