package chaosnet

import (
	"net"
	"sync"
	"time"
)

// Proxy is an in-process TCP proxy that puts a chaos Link between a
// client and one node: the client dials the proxy's address, the
// proxy dials the real node, and every byte pumped between them
// crosses the link's fault engine. Tests park one proxy in front of
// each trapnode; tools/chaosproxy runs the same thing from the
// command line for fire drills against a live fleet.
type Proxy struct {
	link   *Link
	target string
	ln     net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// proxyDialTimeout bounds the proxy's own dial to the target.
const proxyDialTimeout = 10 * time.Second

// NewProxy listens on listenAddr (use "127.0.0.1:0" for an ephemeral
// port) and forwards each admitted connection to target through the
// link.
func NewProxy(listenAddr, target string, link *Link) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{link: link, target: target, ln: ln}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the node.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Link exposes the proxy's fault engine.
func (p *Proxy) Link() *Link { return p.link }

// Close stops accepting, tears down every proxied connection, and
// waits for the pumps to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.link.CutConns()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handle(c)
	}
}

// handle admits the connection, dials the target, and runs one pump
// per direction until either side dies or the link tears the pair
// down.
func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	upstream, err := net.DialTimeout("tcp", p.target, proxyDialTimeout)
	if err != nil {
		client.Close()
		return
	}
	entry := p.link.admit(client, upstream)
	if entry == nil {
		// Refused: the client sees its connection die right after the
		// handshake, the loopback stand-in for a refused SYN.
		client.Close()
		upstream.Close()
		return
	}
	up := p.link.newFlow(Up, entry)
	down := p.link.newFlow(Down, entry)

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pump(upstream, client, up, entry)
	}()
	go func() {
		defer pumps.Done()
		p.pump(client, upstream, down, entry)
	}()
	pumps.Wait()
	p.link.release(entry)
}

// pump moves bytes src→dst through one direction's fault engine.
// Bursts are whatever Read returns (the 32 KiB buffer keeps them
// sub-frame, so mid-frame faults like ResetAfter land where they
// should). Any terminal event tears down both sides so the peer pump
// unblocks.
func (p *Proxy) pump(dst, src net.Conn, f *flow, entry *connEntry) {
	defer entry.close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			sleep, deliver, action := f.plan(n)
			if !f.wait(sleep) {
				return
			}
			switch action {
			case actSwallow:
				// Bytes died in transit; keep reading so the sender
				// doesn't see an error — it just never gets an answer.
			case actReset:
				return
			case actDeliverReset:
				_, _ = dst.Write(buf[:deliver])
				return
			default:
				if _, werr := dst.Write(buf[:deliver]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}
