// Package chaosnet is the wire-level network-chaos engine: a
// fault-injecting net.Conn/net.Listener wrapper and an in-process TCP
// proxy that can drop, delay, jitter, bandwidth-cap, blackhole and
// reset individual node links — per direction, so partitions can be
// asymmetric — deterministically under a seed. The partition chaos
// suite scripts it from tests; tools/chaosproxy exposes the same
// engine as a CLI so an operator can run a fire drill against a live
// trapnode fleet.
//
// One Link models the network path between a client and one node. Its
// two directions are independent: Up carries bytes toward the node,
// Down carries the node's answers back. Faults are consulted on every
// burst of bytes crossing the link, so they can be changed while
// connections are open (a live link can start flapping mid-workload).
//
// Fault semantics mirror what real networks do:
//
//   - Drop: with probability DropProb per burst the stream dies
//     silently — this and every later burst in the direction vanish,
//     like a TCP stream whose segments stopped arriving. The peer
//     observes a hang, not an error; only its deadline saves it.
//   - Reset: with probability ResetProb per burst the connection is
//     torn down immediately (RST-style). ResetAfter cuts the
//     connection after exactly N bytes in the direction — the
//     mid-frame tear the transport layer must classify as a node
//     failure, not a decode error.
//   - Delay/Jitter: each burst waits Delay plus a uniform extra in
//     [0, Jitter) before crossing.
//   - Bandwidth: bytes cross at most this fast; a few bytes/s is a
//     slow-loris.
//   - Blackhole: every burst vanishes (Drop with probability 1,
//     applied to already-open connections too).
//   - Partition (link level): new connections are refused and open
//     ones reset — the fast, RST-visible kind of partition, as
//     opposed to Blackhole's silent one.
//
// Determinism: every random decision draws from per-connection
// generators derived from the link seed and a connection counter, so
// a test that opens connections and writes bursts in a fixed order
// sees the same faults on every run.
package chaosnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrLinkClosed reports IO on a connection the link tore down.
var ErrLinkClosed = errors.New("chaosnet: connection torn by link fault")

// Direction selects one of a link's two byte streams.
type Direction int

const (
	// Up carries bytes from the client toward the node.
	Up Direction = iota
	// Down carries the node's answers back to the client.
	Down
)

// String names the direction for logs.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Faults is the fault set applied to one direction of a link. The
// zero value injects nothing.
type Faults struct {
	// Delay is added to every burst crossing the direction.
	Delay time.Duration
	// Jitter adds a uniform extra in [0, Jitter) per burst.
	Jitter time.Duration
	// Bandwidth caps the direction to this many bytes per second
	// (0 = unlimited). A few bytes per second is a slow-loris.
	Bandwidth int
	// DropProb is the per-burst probability the stream dies silently:
	// the burst and everything after it in this direction vanish, and
	// the peer hangs until its own deadline. Models packet loss
	// stalling a TCP stream.
	DropProb float64
	// ResetProb is the per-burst probability the connection is reset.
	ResetProb float64
	// ResetAfter tears the connection after exactly this many bytes
	// have crossed the direction (0 = never) — a reset between a
	// frame's header and body.
	ResetAfter int64
	// Blackhole swallows every burst, open connections included.
	Blackhole bool
}

// zero reports whether the fault set injects nothing.
func (f Faults) zero() bool { return f == Faults{} }

// Stats counts what a link did to its traffic. All fields are
// cumulative and safe to read while the link is in use.
type Stats struct {
	// Conns is how many connections the link admitted.
	Conns int64
	// RefusedDials is how many connection attempts were refused.
	RefusedDials int64
	// DroppedBursts counts bursts that vanished (drop or blackhole).
	DroppedBursts int64
	// Resets counts connections torn by reset faults.
	Resets int64
}

// Link models the network path between a client and one node: the
// shared fault state every connection crossing the path consults.
// Safe for concurrent use; faults apply to connections already open.
type Link struct {
	mu       sync.Mutex
	seed     int64
	connSeq  int64
	up, down Faults
	refuse   bool
	dropDial float64
	dialRng  *rand.Rand

	conns map[*connEntry]struct{}

	refused atomic.Int64
	admits  atomic.Int64
	drops   atomic.Int64
	resets  atomic.Int64
}

// connEntry tracks one admitted connection (or proxied pair) so a
// Partition can tear it down.
type connEntry struct {
	seq       int64
	closeOnce sync.Once
	closers   []net.Conn
	done      chan struct{}
}

func (e *connEntry) close() {
	e.closeOnce.Do(func() {
		close(e.done)
		for _, c := range e.closers {
			c.Close()
		}
	})
}

// NewLink builds a healthy link whose fault decisions derive from
// seed.
func NewLink(seed int64) *Link {
	return &Link{
		seed:    seed,
		dialRng: rand.New(rand.NewSource(seed ^ 0x5eed01a1)),
		conns:   make(map[*connEntry]struct{}),
	}
}

// SetFaults installs the per-direction fault sets, replacing the
// previous ones. Connections already open see the new faults on their
// next burst.
func (l *Link) SetFaults(up, down Faults) {
	l.mu.Lock()
	l.up, l.down = up, down
	l.mu.Unlock()
}

// SetDialFaults controls connection admission: refuse rejects every
// new connection (partition-style), dropProb rejects a random
// fraction.
func (l *Link) SetDialFaults(refuse bool, dropProb float64) {
	l.mu.Lock()
	l.refuse, l.dropDial = refuse, dropProb
	l.mu.Unlock()
}

// Partition cuts the link the loud way: new connections are refused
// and every open one is reset. The peer sees connection errors
// immediately — the RST-visible partition.
func (l *Link) Partition() {
	l.mu.Lock()
	l.refuse = true
	entries := make([]*connEntry, 0, len(l.conns))
	for e := range l.conns {
		entries = append(entries, e)
	}
	l.mu.Unlock()
	for _, e := range entries {
		e.close()
	}
}

// Blackhole cuts the link the silent way: every burst in both
// directions vanishes, open connections included. Peers hang until
// their deadlines. New connections are still accepted (the TCP
// handshake is terminated locally) and then starve.
func (l *Link) Blackhole() {
	l.mu.Lock()
	l.up.Blackhole = true
	l.down.Blackhole = true
	l.mu.Unlock()
}

// Heal restores the link: dial admission reopens and both directions
// drop their fault sets. Streams already silently dead stay dead —
// the bytes they lost are gone, exactly like a real stalled TCP
// stream; the peer's deadline reaps them and the next dial is clean.
func (l *Link) Heal() {
	l.mu.Lock()
	l.refuse = false
	l.dropDial = 0
	l.up = Faults{}
	l.down = Faults{}
	l.mu.Unlock()
}

// CutConns resets every open connection without touching the fault
// configuration (a momentary blip).
func (l *Link) CutConns() {
	l.mu.Lock()
	entries := make([]*connEntry, 0, len(l.conns))
	for e := range l.conns {
		entries = append(entries, e)
	}
	l.mu.Unlock()
	for _, e := range entries {
		e.close()
	}
}

// Stats snapshots the link's traffic counters.
func (l *Link) Stats() Stats {
	return Stats{
		Conns:         l.admits.Load(),
		RefusedDials:  l.refused.Load(),
		DroppedBursts: l.drops.Load(),
		Resets:        l.resets.Load(),
	}
}

// faults returns the current fault set for one direction.
func (l *Link) faults(d Direction) Faults {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d == Up {
		return l.up
	}
	return l.down
}

// admit decides one connection attempt. It returns the tracking entry
// on admission and nil on refusal.
func (l *Link) admit(closers ...net.Conn) *connEntry {
	l.mu.Lock()
	refuse := l.refuse
	if !refuse && l.dropDial > 0 {
		refuse = l.dialRng.Float64() < l.dropDial
	}
	if refuse {
		l.mu.Unlock()
		l.refused.Add(1)
		return nil
	}
	l.connSeq++
	e := &connEntry{seq: l.connSeq, closers: closers, done: make(chan struct{})}
	l.conns[e] = struct{}{}
	l.mu.Unlock()
	l.admits.Add(1)
	return e
}

// release forgets a settled connection.
func (l *Link) release(e *connEntry) {
	l.mu.Lock()
	delete(l.conns, e)
	l.mu.Unlock()
}

// newFlow derives the deterministic per-connection, per-direction
// fault stream.
func (l *Link) newFlow(d Direction, e *connEntry) *flow {
	return &flow{
		link: l,
		dir:  d,
		rng:  rand.New(rand.NewSource(l.seed ^ (e.seq * 0x9e3779b97f4a7c) ^ int64(d))),
		done: e.done,
	}
}

// flow is the fault state of one direction of one connection.
type flow struct {
	link *Link
	dir  Direction
	rng  *rand.Rand
	done <-chan struct{}
	sent int64
	dead bool // stream silently dropped; every later burst vanishes
}

// burst actions.
const (
	actDeliver = iota
	actSwallow
	actReset
	actDeliverReset // deliver a prefix, then reset (ResetAfter mid-burst)
)

// plan decides the fate of one n-byte burst: how long it waits, how
// many bytes cross, and whether the connection survives.
func (f *flow) plan(n int) (sleep time.Duration, deliver int, action int) {
	fa := f.link.faults(f.dir)
	if f.dead || fa.Blackhole {
		f.link.drops.Add(1)
		return 0, 0, actSwallow
	}
	if fa.DropProb > 0 && f.rng.Float64() < fa.DropProb {
		f.dead = true
		f.link.drops.Add(1)
		return 0, 0, actSwallow
	}
	if fa.ResetProb > 0 && f.rng.Float64() < fa.ResetProb {
		f.link.resets.Add(1)
		return 0, 0, actReset
	}
	deliver, action = n, actDeliver
	if fa.ResetAfter > 0 {
		remaining := fa.ResetAfter - f.sent
		if remaining <= 0 {
			f.link.resets.Add(1)
			return 0, 0, actReset
		}
		if int64(n) > remaining {
			deliver, action = int(remaining), actDeliverReset
			f.link.resets.Add(1)
		}
	}
	sleep = fa.Delay
	if fa.Jitter > 0 {
		sleep += time.Duration(f.rng.Int63n(int64(fa.Jitter)))
	}
	if fa.Bandwidth > 0 {
		sleep += time.Duration(int64(deliver) * int64(time.Second) / int64(fa.Bandwidth))
	}
	f.sent += int64(deliver)
	return sleep, deliver, action
}

// wait sleeps the planned duration, abandoning early when the
// connection is torn down. It reports whether the sleep completed.
func (f *flow) wait(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-f.done:
		return false
	}
}

// Side says which end of the link a wrapped connection sits on, which
// fixes the direction of its reads and writes.
type Side int

const (
	// ClientSide: writes go Up (toward the node), reads come Down.
	ClientSide Side = iota
	// ServerSide: reads arrive Up, writes go Down.
	ServerSide
)

// Conn is a net.Conn crossing a chaos link: every Read and Write
// consults the link's current faults. Build with Link.WrapConn or
// through WrapListener.
type Conn struct {
	net.Conn
	link        *Link
	entry       *connEntry
	read, write *flow
	resetNext   atomic.Bool
}

// WrapConn places an established connection on the link. It returns
// nil when the link refuses the connection (it is closed); callers
// that cannot handle nil should dial through a Proxy instead, which
// models refusal as an immediate close.
func (l *Link) WrapConn(c net.Conn, side Side) *Conn {
	e := l.admit(c)
	if e == nil {
		c.Close()
		return nil
	}
	wc := &Conn{Conn: c, link: l, entry: e}
	if side == ClientSide {
		wc.write, wc.read = l.newFlow(Up, e), l.newFlow(Down, e)
	} else {
		wc.read, wc.write = l.newFlow(Up, e), l.newFlow(Down, e)
	}
	return wc
}

// Read applies the inbound direction's faults: delayed bytes arrive
// late, dropped bytes never arrive (the read keeps waiting, exactly
// like a stalled stream), a reset tears the connection.
func (c *Conn) Read(p []byte) (int, error) {
	for {
		if c.resetNext.Load() {
			c.teardown()
			return 0, ErrLinkClosed
		}
		n, err := c.Conn.Read(p)
		if n > 0 {
			sleep, deliver, action := c.read.plan(n)
			if !c.read.wait(sleep) {
				return 0, ErrLinkClosed
			}
			switch action {
			case actDeliver:
				return n, err
			case actDeliverReset:
				c.resetNext.Store(true)
				return deliver, nil
			case actReset:
				c.teardown()
				return 0, ErrLinkClosed
			case actSwallow:
				// The bytes vanished in transit; keep waiting for more,
				// like a socket whose peer's segments are being lost.
				if err != nil {
					return 0, err
				}
				continue
			}
		}
		if err != nil {
			return 0, err
		}
	}
}

// Write applies the outbound direction's faults. Swallowed writes
// report success — the bytes entered the network and died there,
// which the sender cannot see.
func (c *Conn) Write(p []byte) (int, error) {
	if c.resetNext.Load() {
		c.teardown()
		return 0, ErrLinkClosed
	}
	sleep, deliver, action := c.write.plan(len(p))
	if !c.write.wait(sleep) {
		return 0, ErrLinkClosed
	}
	switch action {
	case actSwallow:
		return len(p), nil
	case actReset:
		c.teardown()
		return 0, ErrLinkClosed
	case actDeliverReset:
		if _, err := c.Conn.Write(p[:deliver]); err != nil {
			return 0, err
		}
		c.teardown()
		return deliver, ErrLinkClosed
	default:
		return c.Conn.Write(p)
	}
}

// Close releases the connection from the link.
func (c *Conn) Close() error {
	c.teardown()
	return nil
}

func (c *Conn) teardown() {
	c.entry.close()
	c.link.release(c.entry)
}

// Listener wraps a net.Listener so every accepted connection crosses
// the link (server side: reads arrive Up, writes leave Down). A
// refused connection is closed immediately — the client sees a reset
// right after its dial, the loopback approximation of a refused SYN.
type Listener struct {
	net.Listener
	link *Link
}

// WrapListener places a listener behind the link.
func WrapListener(ln net.Listener, link *Link) *Listener {
	return &Listener{Listener: ln, link: link}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if wc := l.link.WrapConn(c, ServerSide); wc != nil {
			return wc, nil
		}
		// Refused by the link: the raw conn is already closed; keep
		// accepting so one refusal does not stall the accept loop.
	}
}

// String renders the fault set compactly for logs.
func (f Faults) String() string {
	return fmt.Sprintf("delay=%v jitter=%v bw=%dB/s drop=%.2f reset=%.2f resetAfter=%d blackhole=%v",
		f.Delay, f.Jitter, f.Bandwidth, f.DropProb, f.ResetProb, f.ResetAfter, f.Blackhole)
}
