package chaosnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair wraps the two ends of a net.Pipe in one link: cli is the
// client side (writes Up, reads Down), srv stays raw so tests can
// play the node.
func pipePair(t *testing.T, link *Link) (cli *Conn, srv net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	c := link.WrapConn(a, ClientSide)
	if c == nil {
		t.Fatal("link refused the pipe connection")
	}
	t.Cleanup(func() { c.Close(); b.Close() })
	return c, b
}

func TestCleanLinkPassesBytes(t *testing.T) {
	cli, srv := pipePair(t, NewLink(1))
	go srv.Write([]byte("hello"))
	buf := make([]byte, 16)
	n, err := cli.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := make([]byte, 5)
		if _, err := io.ReadFull(srv, got); err != nil || string(got) != "world" {
			t.Errorf("server read = %q, %v", got, err)
		}
	}()
	if _, err := cli.Write([]byte("world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-done
}

func TestDeterministicUnderSeed(t *testing.T) {
	// The same seed must produce the same per-burst fault decisions
	// for the same burst sequence.
	run := func(seed int64) []int {
		link := NewLink(seed)
		link.SetFaults(Faults{DropProb: 0.4, ResetProb: 0.2}, Faults{})
		e := link.admit()
		if e == nil {
			t.Fatal("admit refused")
		}
		f := link.newFlow(Up, e)
		acts := make([]int, 0, 64)
		for i := 0; i < 64; i++ {
			_, _, action := f.plan(128)
			acts = append(acts, action)
			if action == actReset {
				break
			}
		}
		return acts
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("burst %d: action %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResetAfterTearsMidBurst(t *testing.T) {
	// ResetAfter=4 on Down: the client receives exactly 4 bytes of a
	// 10-byte frame, then the connection dies — the torn-frame case.
	link := NewLink(7)
	link.SetFaults(Faults{}, Faults{ResetAfter: 4})
	cli, srv := pipePair(t, link)
	go srv.Write([]byte("0123456789"))
	buf := make([]byte, 64)
	n, err := cli.Read(buf)
	if err != nil || n != 4 || !bytes.Equal(buf[:n], []byte("0123")) {
		t.Fatalf("first read = %q, %v (want 4 bytes)", buf[:n], err)
	}
	if _, err := cli.Read(buf); !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("second read err = %v, want ErrLinkClosed", err)
	}
}

func TestDropStallsStream(t *testing.T) {
	// DropProb=1 swallows the burst silently: the reader hangs until
	// its own deadline, exactly like a stalled TCP stream.
	link := NewLink(3)
	link.SetFaults(Faults{}, Faults{DropProb: 1})
	cli, srv := pipePair(t, link)
	go srv.Write([]byte("vanishes"))
	cli.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if _, err := cli.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read err = %v, want deadline exceeded", err)
	}
	if s := link.Stats(); s.DroppedBursts == 0 {
		t.Fatal("expected dropped bursts in stats")
	}
}

func TestBlackholeSwallowsWrites(t *testing.T) {
	link := NewLink(3)
	link.Blackhole()
	cli, srv := pipePair(t, link)
	// The write "succeeds" — the bytes died in the network, which the
	// sender cannot observe.
	if n, err := cli.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("write = %d, %v", n, err)
	}
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if _, err := srv.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("server read err = %v, want deadline exceeded", err)
	}
}

func TestDelayPacesBursts(t *testing.T) {
	link := NewLink(3)
	link.SetFaults(Faults{}, Faults{Delay: 30 * time.Millisecond})
	cli, srv := pipePair(t, link)
	go srv.Write([]byte("late"))
	start := time.Now()
	buf := make([]byte, 16)
	if _, err := cli.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("read returned after %v, want >= ~30ms", d)
	}
}

func TestHealRestoresNewTraffic(t *testing.T) {
	link := NewLink(9)
	link.Blackhole()
	link.Heal()
	cli, srv := pipePair(t, link)
	go srv.Write([]byte("ok"))
	buf := make([]byte, 4)
	if n, err := cli.Read(buf); err != nil || string(buf[:n]) != "ok" {
		t.Fatalf("read after heal = %q, %v", buf[:n], err)
	}
}

func TestPartitionRefusesAndCutsConns(t *testing.T) {
	link := NewLink(5)
	cli, _ := pipePair(t, link)
	link.Partition()
	// The open connection was reset.
	buf := make([]byte, 4)
	if _, err := cli.Read(buf); err == nil {
		t.Fatal("read on partitioned conn should fail")
	}
	// New connections are refused.
	a, b := net.Pipe()
	defer b.Close()
	if c := link.WrapConn(a, ClientSide); c != nil {
		t.Fatal("partitioned link admitted a new conn")
	}
	if s := link.Stats(); s.RefusedDials == 0 {
		t.Fatal("expected refused dials in stats")
	}
}

// startEcho runs a raw TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln.Addr().String()
}

func TestProxyPassesTrafficAndInjectsFaults(t *testing.T) {
	link := NewLink(11)
	proxy, err := NewProxy("127.0.0.1:0", startEcho(t), link)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Clean pass-through.
	c, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}

	// Blackhole the link: the open connection starves.
	link.Blackhole()
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read err = %v, want deadline exceeded", err)
	}

	// Heal: a fresh connection is clean again.
	link.Heal()
	c2, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err = c2.Read(buf)
	if err != nil || string(buf[:n]) != "back" {
		t.Fatalf("healed echo = %q, %v", buf[:n], err)
	}
}

func TestProxyPartitionKillsDialsFast(t *testing.T) {
	link := NewLink(13)
	proxy, err := NewProxy("127.0.0.1:0", startEcho(t), link)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	link.Partition()

	// The dial itself succeeds (the proxy accepts the TCP handshake)
	// but the connection dies immediately — no hang.
	c, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		return // full refusal also acceptable
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned dial read err = %v, want immediate close", err)
	}
}
