package matrix

import "trapquorum/internal/gf256"

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination over GF(2^8), or ErrSingular if no inverse exists. The
// receiver is not modified.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, ErrSingular
	}
	n := m.rows
	work := m.Augment(Identity(n))
	if err := work.gaussJordan(); err != nil {
		return nil, err
	}
	return work.SubMatrix(0, n, n, 2*n), nil
}

// IsSingular reports whether a square matrix has no inverse. Non-square
// matrices are reported singular.
func (m *Matrix) IsSingular() bool {
	if m.rows != m.cols {
		return true
	}
	_, err := m.Clone().InvertInPlaceCheck()
	return err != nil
}

// InvertInPlaceCheck row-reduces a clone of the square part to detect
// singularity without allocating the augmented identity. It returns the
// rank reached and ErrSingular when rank < n.
func (m *Matrix) InvertInPlaceCheck() (int, error) {
	n := m.rows
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return col, ErrSingular
		}
		m.SwapRows(col, pivot)
		pivotRow := m.rowView(col)
		inv := gf256.Inv(pivotRow[col])
		gf256.MulSlice(inv, pivotRow, pivotRow)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := m.At(r, col)
			if factor != 0 {
				gf256.MulAddSlice(factor, m.rowView(r), pivotRow)
			}
		}
	}
	return n, nil
}

// gaussJordan reduces the left square block of an augmented matrix
// [A | B] to the identity, transforming B into A^-1·B in place.
func (m *Matrix) gaussJordan() error {
	n := m.rows
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return ErrSingular
		}
		m.SwapRows(col, pivot)
		pivotRow := m.rowView(col)
		inv := gf256.Inv(pivotRow[col])
		gf256.MulSlice(inv, pivotRow, pivotRow)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := m.At(r, col)
			if factor != 0 {
				gf256.MulAddSlice(factor, m.rowView(r), pivotRow)
			}
		}
	}
	return nil
}

// Rank returns the rank of the matrix (number of linearly independent
// rows). The receiver is not modified.
func (m *Matrix) Rank() int {
	work := m.Clone()
	rank := 0
	for col := 0; col < work.cols && rank < work.rows; col++ {
		pivot := -1
		for r := rank; r < work.rows; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.SwapRows(rank, pivot)
		pivotRow := work.rowView(rank)
		inv := gf256.Inv(pivotRow[col])
		gf256.MulSlice(inv, pivotRow, pivotRow)
		for r := 0; r < work.rows; r++ {
			if r == rank {
				continue
			}
			factor := work.At(r, col)
			if factor != 0 {
				gf256.MulAddSlice(factor, work.rowView(r), pivotRow)
			}
		}
		rank++
	}
	return rank
}
