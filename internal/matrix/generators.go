package matrix

import (
	"fmt"

	"trapquorum/internal/gf256"
)

// Vandermonde returns the rows×cols Vandermonde matrix with
// V[r][c] = r^c (elements of GF(2^8)). Any k rows of a k-column
// Vandermonde matrix with distinct evaluation points are linearly
// independent, which is the foundation of the MDS property.
// rows must not exceed 256 (distinct field elements).
func Vandermonde(rows, cols int) *Matrix {
	if rows > 256 {
		panic(fmt.Sprintf("matrix: Vandermonde rows %d exceeds field size", rows))
	}
	m := New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, gf256.Pow(byte(r), c))
		}
	}
	return m
}

// Cauchy returns the rows×cols Cauchy matrix with
// C[r][c] = 1 / (x_r + y_c) where x_r = r and y_c = rows + c. Every
// square submatrix of a Cauchy matrix is invertible. rows+cols must not
// exceed 256 so that all x and y are distinct field elements.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > 256 {
		panic(fmt.Sprintf("matrix: Cauchy %d+%d exceeds field size", rows, cols))
	}
	m := New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := byte(r)
			y := byte(rows + c)
			m.Set(r, c, gf256.Inv(gf256.Add(x, y)))
		}
	}
	return m
}

// Systematic returns the n×k generator matrix of a systematic (n,k)
// MDS code: the top k×k block is the identity (original blocks are
// stored verbatim) and the bottom (n−k)×k block holds the parity
// coefficients α_{j,i} of the paper's equation (1).
//
// It is built by taking the n×k Vandermonde matrix and multiplying by
// the inverse of its top k×k block; the result keeps the property that
// every k×k submatrix is invertible, so any k of the n coded blocks
// reconstruct the data.
func Systematic(n, k int) (*Matrix, error) {
	if k <= 0 || n < k {
		return nil, fmt.Errorf("matrix: invalid code parameters n=%d k=%d", n, k)
	}
	if n > 256 {
		return nil, fmt.Errorf("matrix: n=%d exceeds field size", n)
	}
	v := Vandermonde(n, k)
	top := v.SubMatrix(0, k, 0, k)
	topInv, err := top.Invert()
	if err != nil {
		return nil, fmt.Errorf("matrix: Vandermonde top block not invertible: %w", err)
	}
	g := v.Mul(topInv)
	// Normalise exact identity on the top block to guard against any
	// latent construction error; the test suite verifies this holds.
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if g.At(r, c) != want {
				return nil, fmt.Errorf("matrix: systematic top block not identity at (%d,%d)", r, c)
			}
		}
	}
	return g, nil
}
