// Package matrix implements dense matrices over the finite field
// GF(2^8), the linear-algebra substrate of the (n,k) MDS erasure code:
// encoding is a matrix-vector product with the generator matrix, and
// decoding inverts the k×k submatrix of surviving rows.
package matrix

import (
	"errors"
	"fmt"
	"strings"

	"trapquorum/internal/gf256"
)

// ErrSingular is returned when a matrix that must be invertible is not.
var ErrSingular = errors.New("matrix: singular")

// Matrix is a dense rows×cols matrix over GF(2^8). The zero value is an
// empty matrix; use New or a generator constructor to build one.
type Matrix struct {
	rows, cols int
	data       []byte // row-major
}

// New returns a zero-filled rows×cols matrix. It panics if either
// dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from explicit row contents. All rows must
// have the same non-zero length.
func FromRows(rows [][]byte) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows needs at least one non-empty row")
	}
	m := New(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.cols {
			panic(fmt.Sprintf("matrix: row %d has %d columns, want %d", r, len(row), m.cols))
		}
		copy(m.data[r*m.cols:], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) byte {
	m.check(r, c)
	return m.data[r*m.cols+c]
}

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v byte) {
	m.check(r, c)
	m.data[r*m.cols+c] = v
}

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %dx%d", r, c, m.rows, m.cols))
	}
}

// Row returns a copy of row r.
func (m *Matrix) Row(r int) []byte {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", r, m.rows))
	}
	out := make([]byte, m.cols)
	copy(out, m.data[r*m.cols:(r+1)*m.cols])
	return out
}

// rowView returns row r without copying; internal use only.
func (m *Matrix) rowView(r int) []byte {
	return m.data[r*m.cols : (r+1)*m.cols]
}

// RowView returns row r as a view into the matrix, without copying.
// The caller must treat it as read-only: mutating it mutates the
// matrix. The allocation-free companion of Row for hot decode paths.
func (m *Matrix) RowView(r int) []byte {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", r, m.rows))
	}
	return m.rowView(r)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m·o. It panics on incompatible shapes.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := New(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		mrow := m.rowView(r)
		orow := out.rowView(r)
		for t := 0; t < m.cols; t++ {
			if mrow[t] == 0 {
				continue
			}
			gf256.MulAddSlice(mrow[t], orow, o.rowView(t))
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v as a new slice. It
// panics if len(v) != Cols().
func (m *Matrix) MulVec(v []byte) []byte {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: vector length %d, want %d", len(v), m.cols))
	}
	out := make([]byte, m.rows)
	for r := 0; r < m.rows; r++ {
		row := m.rowView(r)
		var acc byte
		for c, coeff := range row {
			acc ^= gf256.Mul(coeff, v[c])
		}
		out[r] = acc
	}
	return out
}

// SelectRows returns a new matrix made of the given rows, in order.
// Rows may repeat. It panics on out-of-range indices.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	if len(idx) == 0 {
		panic("matrix: SelectRows with no rows")
	}
	out := New(len(idx), m.cols)
	for i, r := range idx {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("matrix: row %d out of %d", r, m.rows))
		}
		copy(out.rowView(i), m.rowView(r))
	}
	return out
}

// Augment returns [m | o], the matrices side by side. Row counts must
// match.
func (m *Matrix) Augment(o *Matrix) *Matrix {
	if m.rows != o.rows {
		panic(fmt.Sprintf("matrix: cannot augment %d rows with %d rows", m.rows, o.rows))
	}
	out := New(m.rows, m.cols+o.cols)
	for r := 0; r < m.rows; r++ {
		copy(out.rowView(r), m.rowView(r))
		copy(out.rowView(r)[m.cols:], o.rowView(r))
	}
	return out
}

// SubMatrix returns the rectangle [r0,r1)×[c0,c1) as a new matrix.
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("matrix: bad submatrix [%d:%d,%d:%d] of %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.rowView(r-r0), m.rowView(r)[c0:c1])
	}
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.rowView(i), m.rowView(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// String renders the matrix in hex, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%02x", m.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
