package matrix

import (
	"math/rand"
	"strings"
	"testing"

	"trapquorum/internal/gf256"
)

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = byte(r.Intn(256))
	}
	return m
}

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if m.At(r, c) != 0 {
				t.Fatalf("At(%d,%d) = %d, want 0", r, c, m.At(r, c))
			}
		}
	}
}

func TestNewInvalidPanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 0xab)
	if m.At(1, 0) != 0xab {
		t.Fatal("Set/At round trip failed")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At(2,0) did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong contents")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]byte{{1, 2}, {3}})
}

func TestIdentityMulIsNoop(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := randMatrix(r, 5, 5)
	if !Identity(5).Mul(m).Equal(m) {
		t.Fatal("I*m != m")
	}
	if !m.Mul(Identity(5)).Equal(m) {
		t.Fatal("m*I != m")
	}
}

func TestMulAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(r, 4, 3)
		b := randMatrix(r, 3, 5)
		c := randMatrix(r, 5, 2)
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			t.Fatal("(ab)c != a(bc)")
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(r, 6, 4)
		v := make([]byte, 4)
		r.Read(v)
		col := New(4, 1)
		for i, x := range v {
			col.Set(i, 0, x)
		}
		want := a.Mul(col)
		got := a.MulVec(v)
		for i := range got {
			if got[i] != want.At(i, 0) {
				t.Fatalf("MulVec[%d] = %d, want %d", i, got[i], want.At(i, 0))
			}
		}
	}
}

func TestMulVecLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec length mismatch did not panic")
		}
	}()
	New(2, 3).MulVec([]byte{1, 2})
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEqual(t *testing.T) {
	a := FromRows([][]byte{{1, 2}})
	if a.Equal(FromRows([][]byte{{1, 3}})) {
		t.Fatal("different contents reported equal")
	}
	if a.Equal(New(2, 1)) {
		t.Fatal("different shapes reported equal")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestSelectRows(t *testing.T) {
	m := FromRows([][]byte{{1, 1}, {2, 2}, {3, 3}})
	s := m.SelectRows([]int{2, 0, 2})
	want := FromRows([][]byte{{3, 3}, {1, 1}, {3, 3}})
	if !s.Equal(want) {
		t.Fatalf("SelectRows = \n%v want \n%v", s, want)
	}
}

func TestSelectRowsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SelectRows did not panic")
		}
	}()
	New(2, 2).SelectRows([]int{0, 3})
}

func TestAugmentAndSubMatrix(t *testing.T) {
	a := FromRows([][]byte{{1, 2}, {3, 4}})
	b := FromRows([][]byte{{5}, {6}})
	aug := a.Augment(b)
	if aug.Cols() != 3 || aug.At(0, 2) != 5 || aug.At(1, 2) != 6 {
		t.Fatalf("Augment wrong: \n%v", aug)
	}
	back := aug.SubMatrix(0, 2, 0, 2)
	if !back.Equal(a) {
		t.Fatal("SubMatrix did not recover left block")
	}
}

func TestSwapRows(t *testing.T) {
	m := FromRows([][]byte{{1, 1}, {2, 2}})
	m.SwapRows(0, 1)
	if m.At(0, 0) != 2 || m.At(1, 0) != 1 {
		t.Fatal("SwapRows failed")
	}
	m.SwapRows(1, 1) // no-op must not corrupt
	if m.At(1, 0) != 1 {
		t.Fatal("self-swap corrupted row")
	}
}

func TestRowCopies(t *testing.T) {
	m := FromRows([][]byte{{7, 8}})
	row := m.Row(0)
	row[0] = 0
	if m.At(0, 0) != 7 {
		t.Fatal("Row returned a view, want a copy")
	}
}

func TestString(t *testing.T) {
	s := FromRows([][]byte{{0, 255}}).String()
	if !strings.Contains(s, "00 ff") {
		t.Fatalf("String() = %q", s)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	found := 0
	for trial := 0; trial < 100 && found < 30; trial++ {
		n := 1 + r.Intn(8)
		m := randMatrix(r, n, n)
		inv, err := m.Invert()
		if err != nil {
			continue // singular random matrix; skip
		}
		found++
		if !m.Mul(inv).Equal(Identity(n)) {
			t.Fatalf("m * m^-1 != I for\n%v", m)
		}
		if !inv.Mul(m).Equal(Identity(n)) {
			t.Fatalf("m^-1 * m != I for\n%v", m)
		}
	}
	if found < 30 {
		t.Fatalf("only %d invertible samples; RNG suspicious", found)
	}
}

func TestInvertSingular(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {1, 2}})
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("Invert singular err = %v, want ErrSingular", err)
	}
	if !m.IsSingular() {
		t.Fatal("IsSingular false for singular matrix")
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := New(2, 3).Invert(); err == nil {
		t.Fatal("non-square Invert succeeded")
	}
	if !New(2, 3).IsSingular() {
		t.Fatal("non-square IsSingular false")
	}
}

func TestInvertDoesNotModifyReceiver(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {3, 4}})
	orig := m.Clone()
	if _, err := m.Invert(); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(orig) {
		t.Fatal("Invert modified receiver")
	}
}

func TestRank(t *testing.T) {
	if got := Identity(4).Rank(); got != 4 {
		t.Fatalf("Rank(I4) = %d", got)
	}
	if got := New(3, 3).Rank(); got != 0 {
		t.Fatalf("Rank(zero) = %d", got)
	}
	m := FromRows([][]byte{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}) // row1 = 2*row0 in GF(2^8)
	if got := m.Rank(); got != 2 {
		t.Fatalf("Rank = %d, want 2", got)
	}
	// Rank of a wide full-rank matrix equals its row count.
	if got := Vandermonde(3, 5).Rank(); got != 3 {
		t.Fatalf("Rank(V 3x5) = %d, want 3", got)
	}
}

func TestVandermondeEntries(t *testing.T) {
	v := Vandermonde(4, 3)
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			if v.At(r, c) != gf256.Pow(byte(r), c) {
				t.Fatalf("V[%d][%d] wrong", r, c)
			}
		}
	}
}

func TestVandermondeAnyKRowsInvertible(t *testing.T) {
	const n, k = 10, 4
	v := Vandermonde(n, k)
	// Exhaustively check all C(10,4) = 210 row subsets.
	idx := []int{0, 1, 2, 3}
	for {
		sub := v.SelectRows(idx)
		if sub.IsSingular() {
			t.Fatalf("Vandermonde rows %v singular", idx)
		}
		// next combination
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func TestVandermondeTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Vandermonde(257,...) did not panic")
		}
	}()
	Vandermonde(257, 2)
}

func TestCauchyAllSquareSubmatricesInvertible(t *testing.T) {
	c := Cauchy(6, 4)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		size := 1 + r.Intn(4)
		rows := r.Perm(6)[:size]
		cols := r.Perm(4)[:size]
		sub := New(size, size)
		for i, rr := range rows {
			for j, cc := range cols {
				sub.Set(i, j, c.At(rr, cc))
			}
		}
		if sub.IsSingular() {
			t.Fatalf("Cauchy submatrix rows=%v cols=%v singular", rows, cols)
		}
	}
}

func TestCauchyTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Cauchy did not panic")
		}
	}()
	Cauchy(200, 100)
}

func TestSystematicTopIdentity(t *testing.T) {
	g, err := Systematic(9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 9 || g.Cols() != 6 {
		t.Fatalf("shape %dx%d", g.Rows(), g.Cols())
	}
	if !g.SubMatrix(0, 6, 0, 6).Equal(Identity(6)) {
		t.Fatal("top block is not the identity")
	}
}

func TestSystematicAnyKRowsInvertible(t *testing.T) {
	const n, k = 9, 5
	g, err := Systematic(n, k)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 1, 2, 3, 4}
	for {
		if g.SelectRows(idx).IsSingular() {
			t.Fatalf("systematic rows %v singular (MDS violated)", idx)
		}
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func TestSystematicParameterValidation(t *testing.T) {
	if _, err := Systematic(3, 5); err == nil {
		t.Fatal("n<k accepted")
	}
	if _, err := Systematic(5, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Systematic(300, 5); err == nil {
		t.Fatal("n>256 accepted")
	}
	if _, err := Systematic(5, 5); err != nil {
		t.Fatalf("n=k rejected: %v", err)
	}
}

func TestInvertLarge(t *testing.T) {
	// A 32x32 Cauchy-derived matrix inverts and round-trips.
	m := Cauchy(32, 32)
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mul(inv).Equal(Identity(32)) {
		t.Fatal("32x32 inversion round trip failed")
	}
}

func BenchmarkInvert16(b *testing.B) {
	m := Cauchy(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul16(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x := randMatrix(r, 16, 16)
	y := randMatrix(r, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}
