package trapquorum

import (
	"time"

	"trapquorum/client"
)

// This file is the store-level surface of the transport resilience
// layer (per-node circuit breakers, retry budgets, latency EWMAs —
// see transport/tcp's Resilience). The store discovers the layer
// through optional Backend extensions, so backends without a
// resilience policy (the simulator, custom backends) keep working
// unchanged: every interface here degrades to "not implemented, no
// data".

// BreakerState re-exports the transport's circuit-breaker state for
// callers inspecting HealthReport.Links without importing client.
type BreakerState = client.BreakerState

// The breaker states (see client.BreakerState).
const (
	BreakerClosed   = client.BreakerClosed
	BreakerOpen     = client.BreakerOpen
	BreakerHalfOpen = client.BreakerHalfOpen
)

// LinkHealth re-exports the per-node-link resilience snapshot behind
// HealthReport.Links.
type LinkHealth = client.LinkHealth

// NodeGater is the optional Backend extension the protocol's fan-out
// engine consults before issuing an RPC: NodeUsable(node) == false
// (typically: the node's circuit breaker is open) makes the engine
// fail the node locally with client.ErrNodeDown instead of queueing
// an RPC the transport would fast-fail anyway. The instant local
// failure keeps tail-latency hedging honest — a gated node is never
// picked as a hedge target. NetBackend implements it from its
// per-node breakers; it must be safe for concurrent use.
type NodeGater interface {
	// NodeUsable reports whether the protocol should talk to cluster
	// node `node` right now.
	NodeUsable(node int) bool
}

// LatencyReporter is the optional Backend extension the self-healing
// monitor draws its brownout signal from: the smoothed round-trip
// latency of the node's link, and false before the first sample.
// NetBackend implements it from each client's EWMA. Implementations
// are called from inside the monitor's probe loop and must not call
// back into the store.
type LatencyReporter interface {
	// NodeLatency returns the smoothed round-trip latency of the link
	// to cluster node `node`, and false before the first sample.
	NodeLatency(node int) (time.Duration, bool)
}

// LinkReporter is the optional Backend extension behind
// HealthReport.Links: a per-node snapshot of breaker state and
// resilience counters, in cluster-node order.
type LinkReporter interface {
	// LinkHealth snapshots every node link's breaker state and
	// counters, indexed by cluster node.
	LinkHealth() []client.LinkHealth
}

// ResilienceReporter is the optional Backend extension behind the
// resilience counters of Metrics().
type ResilienceReporter interface {
	// ResilienceStats aggregates breaker and retry-budget counters
	// across every node link.
	ResilienceStats() client.ResilienceStats
}

// nodeGate resolves the backend's gate, or nil when the backend has
// none (core treats a nil gate as "every node usable").
func nodeGate(b Backend) func(node int) bool {
	g, ok := b.(NodeGater)
	if !ok {
		return nil
	}
	return g.NodeUsable
}

// foldResilience adds the backend's breaker and retry-budget counters
// into a Metrics snapshot. No-op for backends without the extension.
func (h *clusterHandle) foldResilience(m *Metrics) {
	rr, ok := h.backend.(ResilienceReporter)
	if !ok {
		return
	}
	s := rr.ResilienceStats()
	m.BreakerOpens = s.BreakerOpens
	m.BreakerFastFails = s.BreakerFastFails
	m.TransportRetries = s.TransportRetries
	m.RetryBudgetSpent = s.RetryBudgetSpent
	m.RetryBudgetDenied = s.RetryBudgetDenied
}
